// Package wasm implements a miniature WebAssembly-like toolchain: modules
// of functions over a 32-bit linear memory with 64 KiB-page growth, and a
// compiler that lowers them to the guest ISA under any of the isolation
// schemes in internal/sfi. It is the reproduction's analogue of
// Wasm2c/Wasmtime: the workload source is identical across schemes and
// only the emitted isolation sequences differ (§5.1).
package wasm

import (
	"fmt"

	"hfi/internal/isa"
)

// VReg is a virtual register. Functions may use arbitrarily many; the
// compiler allocates them to physical registers and spills the remainder
// to frame slots, which is how the schemes' register-pressure differences
// become measurable (§6.1).
type VReg int

// VNone marks an unused virtual-register operand.
const VNone VReg = -1

// PageSize is the Wasm linear-memory page size (64 KiB), the granularity
// of memory.grow and of HFI's large explicit regions.
const PageSize = 1 << 16

// vop is the internal operation of one IR instruction. Most ALU and
// control ops reuse the ISA opcode directly.
type vop uint8

const (
	vISA   vop = iota // Op field holds the isa opcode
	vLoad             // linear-memory load
	vStore            // linear-memory store
	vGrow             // memory.grow: Rd = old pages or -1, Rs1 = delta
	vSize             // memory.size: Rd = current pages
	vCall             // direct call with args/result
	vRet              // return (optional value in Rs1)
	vTrap             // unconditional trap
	vHost             // host call through the __hostcall gate: Imm = number
)

// VInstr is one IR instruction.
type VInstr struct {
	vop     vop
	Op      isa.Op
	Cond    isa.Cond
	Rd      VReg
	Rs1     VReg
	Rs2     VReg
	Rs3     VReg
	Size    uint8
	MemIdx  uint8 // linear memory index (multi-memory proposal)
	SignExt bool
	UseImm  bool
	W32     bool
	Imm     int64
	Disp    int64
	Label   string
	Args    []VReg // vCall arguments
}

// Fn is one function under construction.
type Fn struct {
	Name    string
	NParams int
	code    []VInstr
	labels  map[string]bool
	nvregs  int
	// HasCalls is set when the function contains calls (forces a frame).
	HasCalls bool
}

// Module is a Wasm-like module: named functions plus linear-memory
// configuration and initial data segments.
//
// Modules may declare additional linear memories (the Wasm multi-memory
// proposal §2 discusses): ExtraMemories lists their sizes in pages.
// Memory 0 is the growable primary memory; extra memories are fixed-size.
// Under HFI each extra memory binds to its own explicit region (free
// accesses); software schemes must load the memory's base (and bound)
// from the instance context on every access — the cost the paper's
// multi-memory discussion predicts.
type Module struct {
	Name     string
	Funcs    []*Fn
	byName   map[string]*Fn
	MemPages int // initial linear memory size, in 64 KiB pages
	MaxPages int // memory.grow limit
	// ExtraMemories holds the page counts of linear memories 1..N.
	ExtraMemories []int
	Data          []DataSeg
}

// DataSeg is an initial linear-memory data segment.
type DataSeg struct {
	Offset uint32
	Bytes  []byte
}

// NewModule creates a module with the given initial and maximum memory
// pages.
func NewModule(name string, memPages, maxPages int) *Module {
	if memPages < 0 || maxPages < memPages {
		panic(fmt.Sprintf("wasm: bad memory limits %d/%d", memPages, maxPages))
	}
	return &Module{Name: name, byName: make(map[string]*Fn), MemPages: memPages, MaxPages: maxPages}
}

// AddData registers an initial data segment (in memory 0).
func (m *Module) AddData(offset uint32, data []byte) {
	m.Data = append(m.Data, DataSeg{Offset: offset, Bytes: data})
}

// AddMemory declares an additional fixed-size linear memory and returns
// its index.
func (m *Module) AddMemory(pages int) uint8 {
	m.ExtraMemories = append(m.ExtraMemories, pages)
	return uint8(len(m.ExtraMemories))
}

// NumMemories returns the total linear-memory count.
func (m *Module) NumMemories() int { return 1 + len(m.ExtraMemories) }

// UsesHostcalls reports whether any function performs a host call. The
// compiler emits the __hostcall gate (and the verifier polices it) only
// then, keeping pure-compute images byte-identical to hostcall-free
// builds.
func (m *Module) UsesHostcalls() bool {
	for _, f := range m.Funcs {
		for i := range f.code {
			if f.code[i].vop == vHost {
				return true
			}
		}
	}
	return false
}

// Func creates (or returns) the function named name with nparams
// parameters. Parameters occupy virtual registers 0..nparams-1.
func (m *Module) Func(name string, nparams int) *Fn {
	if f, ok := m.byName[name]; ok {
		return f
	}
	f := &Fn{Name: name, NParams: nparams, labels: make(map[string]bool), nvregs: nparams}
	m.Funcs = append(m.Funcs, f)
	m.byName[name] = f
	return f
}

// Lookup returns the named function, or nil.
func (m *Module) Lookup(name string) *Fn { return m.byName[name] }

// NewReg allocates a fresh virtual register.
func (f *Fn) NewReg() VReg {
	v := VReg(f.nvregs)
	f.nvregs++
	return v
}

// Param returns the virtual register of parameter i.
func (f *Fn) Param(i int) VReg {
	if i >= f.NParams {
		panic(fmt.Sprintf("wasm: function %s has %d params, requested %d", f.Name, f.NParams, i))
	}
	return VReg(i)
}

func (f *Fn) track(rs ...VReg) {
	for _, r := range rs {
		if int(r) >= f.nvregs {
			f.nvregs = int(r) + 1
		}
	}
}

func (f *Fn) emit(in VInstr) *Fn {
	f.track(in.Rd, in.Rs1, in.Rs2, in.Rs3)
	f.track(in.Args...)
	f.code = append(f.code, in)
	return f
}

// Label defines a function-local label.
func (f *Fn) Label(name string) *Fn {
	if f.labels[name] {
		panic(fmt.Sprintf("wasm: duplicate label %q in %s", name, f.Name))
	}
	f.labels[name] = true
	return f.emit(VInstr{vop: vISA, Op: isa.OpNop, Rd: VNone, Rs1: VNone, Rs2: VNone, Rs3: VNone, Label: "@" + name})
}

// MovImm sets rd to a constant.
func (f *Fn) MovImm(rd VReg, imm int64) *Fn {
	return f.emit(VInstr{vop: vISA, Op: isa.OpMovImm, Rd: rd, Rs1: VNone, Rs2: VNone, Rs3: VNone, Imm: imm})
}

// Mov copies rs to rd.
func (f *Fn) Mov(rd, rs VReg) *Fn {
	return f.emit(VInstr{vop: vISA, Op: isa.OpMov, Rd: rd, Rs1: rs, Rs2: VNone, Rs3: VNone})
}

func (f *Fn) alu(op isa.Op, rd, a, b VReg, w32 bool) *Fn {
	return f.emit(VInstr{vop: vISA, Op: op, Rd: rd, Rs1: a, Rs2: b, Rs3: VNone, W32: w32})
}

func (f *Fn) alui(op isa.Op, rd, a VReg, imm int64, w32 bool) *Fn {
	return f.emit(VInstr{vop: vISA, Op: op, Rd: rd, Rs1: a, Rs2: VNone, Rs3: VNone, UseImm: true, Imm: imm, W32: w32})
}

// 64-bit ALU operations.

func (f *Fn) Add(rd, a, b VReg) *Fn { return f.alu(isa.OpAdd, rd, a, b, false) }
func (f *Fn) Sub(rd, a, b VReg) *Fn { return f.alu(isa.OpSub, rd, a, b, false) }
func (f *Fn) And(rd, a, b VReg) *Fn { return f.alu(isa.OpAnd, rd, a, b, false) }
func (f *Fn) Or(rd, a, b VReg) *Fn  { return f.alu(isa.OpOr, rd, a, b, false) }
func (f *Fn) Xor(rd, a, b VReg) *Fn { return f.alu(isa.OpXor, rd, a, b, false) }
func (f *Fn) Shl(rd, a, b VReg) *Fn { return f.alu(isa.OpShl, rd, a, b, false) }
func (f *Fn) Shr(rd, a, b VReg) *Fn { return f.alu(isa.OpShr, rd, a, b, false) }
func (f *Fn) Mul(rd, a, b VReg) *Fn { return f.alu(isa.OpMul, rd, a, b, false) }
func (f *Fn) Div(rd, a, b VReg) *Fn { return f.alu(isa.OpDiv, rd, a, b, false) }
func (f *Fn) Rem(rd, a, b VReg) *Fn { return f.alu(isa.OpRem, rd, a, b, false) }

// Immediate 64-bit forms.

func (f *Fn) AddImm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpAdd, rd, a, imm, false) }
func (f *Fn) SubImm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpSub, rd, a, imm, false) }
func (f *Fn) AndImm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpAnd, rd, a, imm, false) }
func (f *Fn) OrImm(rd, a VReg, imm int64) *Fn  { return f.alui(isa.OpOr, rd, a, imm, false) }
func (f *Fn) XorImm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpXor, rd, a, imm, false) }
func (f *Fn) ShlImm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpShl, rd, a, imm, false) }
func (f *Fn) ShrImm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpShr, rd, a, imm, false) }
func (f *Fn) SarImm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpSar, rd, a, imm, false) }
func (f *Fn) MulImm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpMul, rd, a, imm, false) }
func (f *Fn) DivImm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpDiv, rd, a, imm, false) }
func (f *Fn) RemImm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpRem, rd, a, imm, false) }

// i32 (W32) ALU operations: results wrap at 32 bits, keeping values legal
// as linear-memory indexes.

func (f *Fn) Add32(rd, a, b VReg) *Fn { return f.alu(isa.OpAdd, rd, a, b, true) }
func (f *Fn) Sub32(rd, a, b VReg) *Fn { return f.alu(isa.OpSub, rd, a, b, true) }
func (f *Fn) Mul32(rd, a, b VReg) *Fn { return f.alu(isa.OpMul, rd, a, b, true) }
func (f *Fn) And32(rd, a, b VReg) *Fn { return f.alu(isa.OpAnd, rd, a, b, true) }
func (f *Fn) Or32(rd, a, b VReg) *Fn  { return f.alu(isa.OpOr, rd, a, b, true) }
func (f *Fn) Xor32(rd, a, b VReg) *Fn { return f.alu(isa.OpXor, rd, a, b, true) }
func (f *Fn) Shl32(rd, a, b VReg) *Fn { return f.alu(isa.OpShl, rd, a, b, true) }
func (f *Fn) Shr32(rd, a, b VReg) *Fn { return f.alu(isa.OpShr, rd, a, b, true) }

// Immediate i32 forms.

func (f *Fn) Add32Imm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpAdd, rd, a, imm, true) }
func (f *Fn) Sub32Imm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpSub, rd, a, imm, true) }
func (f *Fn) Mul32Imm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpMul, rd, a, imm, true) }
func (f *Fn) And32Imm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpAnd, rd, a, imm, true) }
func (f *Fn) Shl32Imm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpShl, rd, a, imm, true) }
func (f *Fn) Shr32Imm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpShr, rd, a, imm, true) }
func (f *Fn) Xor32Imm(rd, a VReg, imm int64) *Fn { return f.alui(isa.OpXor, rd, a, imm, true) }
func (f *Fn) Or32Imm(rd, a VReg, imm int64) *Fn  { return f.alui(isa.OpOr, rd, a, imm, true) }

// Load emits a linear-memory load: rd <- mem[idx + disp], zero-extended.
func (f *Fn) Load(size uint8, rd, idx VReg, disp int64) *Fn {
	return f.emit(VInstr{vop: vLoad, Rd: rd, Rs1: idx, Rs2: VNone, Rs3: VNone, Size: size, Disp: disp})
}

// LoadS is Load with sign extension.
func (f *Fn) LoadS(size uint8, rd, idx VReg, disp int64) *Fn {
	return f.emit(VInstr{vop: vLoad, Rd: rd, Rs1: idx, Rs2: VNone, Rs3: VNone, Size: size, Disp: disp, SignExt: true})
}

// Store emits a linear-memory store: mem[idx + disp] <- src.
func (f *Fn) Store(size uint8, idx VReg, disp int64, src VReg) *Fn {
	return f.emit(VInstr{vop: vStore, Rd: VNone, Rs1: idx, Rs2: VNone, Rs3: src, Size: size, Disp: disp})
}

// LoadMem is Load against linear memory mem (multi-memory).
func (f *Fn) LoadMem(mem uint8, size uint8, rd, idx VReg, disp int64) *Fn {
	return f.emit(VInstr{vop: vLoad, Rd: rd, Rs1: idx, Rs2: VNone, Rs3: VNone, Size: size, Disp: disp, MemIdx: mem})
}

// StoreMem is Store against linear memory mem (multi-memory).
func (f *Fn) StoreMem(mem uint8, size uint8, idx VReg, disp int64, src VReg) *Fn {
	return f.emit(VInstr{vop: vStore, Rd: VNone, Rs1: idx, Rs2: VNone, Rs3: src, Size: size, Disp: disp, MemIdx: mem})
}

// Br emits a conditional branch to a function-local label.
func (f *Fn) Br(cond isa.Cond, a, b VReg, label string) *Fn {
	return f.emit(VInstr{vop: vISA, Op: isa.OpBr, Cond: cond, Rd: VNone, Rs1: a, Rs2: b, Rs3: VNone, Label: label})
}

// BrImm emits a conditional branch comparing a to an immediate.
func (f *Fn) BrImm(cond isa.Cond, a VReg, imm int64, label string) *Fn {
	return f.emit(VInstr{vop: vISA, Op: isa.OpBr, Cond: cond, Rd: VNone, Rs1: a, Rs2: VNone, Rs3: VNone, UseImm: true, Imm: imm, Label: label})
}

// Jmp emits an unconditional jump to a function-local label.
func (f *Fn) Jmp(label string) *Fn {
	return f.emit(VInstr{vop: vISA, Op: isa.OpJmp, Rd: VNone, Rs1: VNone, Rs2: VNone, Rs3: VNone, Label: label})
}

// Call emits a direct call. Argument values are passed to the callee's
// parameter registers; the result (the callee's Ret operand) lands in rd
// (pass VNone to discard).
func (f *Fn) Call(name string, rd VReg, args ...VReg) *Fn {
	f.HasCalls = true
	return f.emit(VInstr{vop: vCall, Rd: rd, Rs1: VNone, Rs2: VNone, Rs3: VNone, Label: name, Args: args})
}

// Ret returns from the function with an optional result (VNone for none).
func (f *Fn) Ret(v VReg) *Fn {
	return f.emit(VInstr{vop: vRet, Rd: VNone, Rs1: v, Rs2: VNone, Rs3: VNone})
}

// Hostcall emits a typed host call: num is the ABI call number (placed
// in R0), up to five argument values travel in R1-R5, and the result —
// or a negated kernel errno — lands in rd (VNone to discard). Lowering
// routes the call through the module's single __hostcall gate, the only
// host exit the verifier admits.
func (f *Fn) Hostcall(rd VReg, num int64, args ...VReg) *Fn {
	f.HasCalls = true
	return f.emit(VInstr{vop: vHost, Rd: rd, Rs1: VNone, Rs2: VNone, Rs3: VNone, Imm: num, Args: args})
}

// Grow emits memory.grow: rd receives the old size in pages, or the i32
// -1 (0xFFFFFFFF) on failure, matching Wasm's i32-typed result; delta is
// the number of pages to add.
func (f *Fn) Grow(rd, delta VReg) *Fn {
	return f.emit(VInstr{vop: vGrow, Rd: rd, Rs1: delta, Rs2: VNone, Rs3: VNone})
}

// MemSize emits memory.size: rd receives the current size in pages.
func (f *Fn) MemSize(rd VReg) *Fn {
	return f.emit(VInstr{vop: vSize, Rd: rd, Rs1: VNone, Rs2: VNone, Rs3: VNone})
}

// Trap emits an unconditional trap.
func (f *Fn) Trap() *Fn {
	return f.emit(VInstr{vop: vTrap, Rd: VNone, Rs1: VNone, Rs2: VNone, Rs3: VNone})
}

// NumVRegs returns the number of virtual registers the function uses.
func (f *Fn) NumVRegs() int { return f.nvregs }

// InstrCount returns the number of IR instructions (excluding labels).
func (f *Fn) InstrCount() int {
	n := 0
	for i := range f.code {
		if f.code[i].Label == "" || f.code[i].Label[0] != '@' {
			n++
		}
	}
	return n
}

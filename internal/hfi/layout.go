package hfi

import "encoding/binary"

// Guest-memory layouts for the parameter structures read by the HFI
// instructions' microcode. hfi_set_region reads a region_t; hfi_enter reads
// a sandbox_t; hfi_get_region writes a region_t. The trusted runtime
// (host-side Go code in internal/sandbox) uses the same encoders to place
// these structures in guest memory.
//
// region_t (32 bytes):
//
//	+0  base_prefix / base_address  u64
//	+8  lsb_mask / bound            u64
//	+16 flags                       u64  (bit0 read, bit1 write, bit2 exec, bit3 large)
//	+24 reserved                    u64
//
// sandbox_t (40 bytes):
//
//	+0  flags        u64 (bit0 is_hybrid, bit1 is_serialized, bit2 switch_on_exit)
//	+8  exit_handler u64
//	+16 regions_ptr  u64
//	+24 region_count u64
//	+32 reserved     u64
//
// The region descriptor table referenced by regions_ptr is an array of
// 40-byte entries: a u64 region number followed by a region_t.

// Structure sizes in guest memory.
const (
	RegionTSize     = 32
	SandboxTSize    = 40
	RegionEntrySize = 8 + RegionTSize
)

// region_t flag bits.
const (
	regionFlagRead  = 1 << 0
	regionFlagWrite = 1 << 1
	regionFlagExec  = 1 << 2
	regionFlagLarge = 1 << 3
)

// sandbox_t flag bits.
const (
	sandboxFlagHybrid       = 1 << 0
	sandboxFlagSerialized   = 1 << 1
	sandboxFlagSwitchOnExit = 1 << 2
)

// EncodeImplicitRegion serializes an implicit region into region_t form.
func EncodeImplicitRegion(r ImplicitRegion) [RegionTSize]byte {
	var buf [RegionTSize]byte
	binary.LittleEndian.PutUint64(buf[0:], r.BasePrefix)
	binary.LittleEndian.PutUint64(buf[8:], r.LSBMask)
	var flags uint64
	if r.Read {
		flags |= regionFlagRead
	}
	if r.Write {
		flags |= regionFlagWrite
	}
	if r.Exec {
		flags |= regionFlagExec
	}
	binary.LittleEndian.PutUint64(buf[16:], flags)
	return buf
}

// DecodeImplicitRegion parses a region_t as an implicit region.
func DecodeImplicitRegion(buf []byte) ImplicitRegion {
	flags := binary.LittleEndian.Uint64(buf[16:])
	return ImplicitRegion{
		BasePrefix: binary.LittleEndian.Uint64(buf[0:]),
		LSBMask:    binary.LittleEndian.Uint64(buf[8:]),
		Read:       flags&regionFlagRead != 0,
		Write:      flags&regionFlagWrite != 0,
		Exec:       flags&regionFlagExec != 0,
	}
}

// EncodeExplicitRegion serializes an explicit region into region_t form.
func EncodeExplicitRegion(r ExplicitRegion) [RegionTSize]byte {
	var buf [RegionTSize]byte
	binary.LittleEndian.PutUint64(buf[0:], r.Base)
	binary.LittleEndian.PutUint64(buf[8:], r.Bound)
	var flags uint64
	if r.Read {
		flags |= regionFlagRead
	}
	if r.Write {
		flags |= regionFlagWrite
	}
	if r.Large {
		flags |= regionFlagLarge
	}
	binary.LittleEndian.PutUint64(buf[16:], flags)
	return buf
}

// DecodeExplicitRegion parses a region_t as an explicit region.
func DecodeExplicitRegion(buf []byte) ExplicitRegion {
	flags := binary.LittleEndian.Uint64(buf[16:])
	return ExplicitRegion{
		Base:  binary.LittleEndian.Uint64(buf[0:]),
		Bound: binary.LittleEndian.Uint64(buf[8:]),
		Read:  flags&regionFlagRead != 0,
		Write: flags&regionFlagWrite != 0,
		Large: flags&regionFlagLarge != 0,
	}
}

// EncodeSandboxT serializes a Config into sandbox_t form.
func EncodeSandboxT(cfg Config) [SandboxTSize]byte {
	var buf [SandboxTSize]byte
	var flags uint64
	if cfg.Hybrid {
		flags |= sandboxFlagHybrid
	}
	if cfg.Serialized {
		flags |= sandboxFlagSerialized
	}
	if cfg.SwitchOnExit {
		flags |= sandboxFlagSwitchOnExit
	}
	binary.LittleEndian.PutUint64(buf[0:], flags)
	binary.LittleEndian.PutUint64(buf[8:], cfg.ExitHandler)
	binary.LittleEndian.PutUint64(buf[16:], cfg.RegionsPtr)
	binary.LittleEndian.PutUint64(buf[24:], cfg.RegionCount)
	return buf
}

// DecodeSandboxT parses a sandbox_t.
func DecodeSandboxT(buf []byte) Config {
	flags := binary.LittleEndian.Uint64(buf[0:])
	return Config{
		Hybrid:       flags&sandboxFlagHybrid != 0,
		Serialized:   flags&sandboxFlagSerialized != 0,
		SwitchOnExit: flags&sandboxFlagSwitchOnExit != 0,
		ExitHandler:  binary.LittleEndian.Uint64(buf[8:]),
		RegionsPtr:   binary.LittleEndian.Uint64(buf[16:]),
		RegionCount:  binary.LittleEndian.Uint64(buf[24:]),
	}
}

// ApplyRegionEntry decodes one region-table entry (region number + region_t)
// and programs the corresponding register. It is the microcode step run by
// hfi_enter for each descriptor at regions_ptr.
func (s *State) ApplyRegionEntry(entry []byte) *Fault {
	n := int(binary.LittleEndian.Uint64(entry[0:]))
	kind, idx, err := regionKind(n)
	if err != nil {
		return s.fault(FaultBadConfig, 0, false)
	}
	body := entry[8:]
	switch kind {
	case "code":
		r := DecodeImplicitRegion(body)
		return s.SetCodeRegion(idx, r)
	case "data":
		r := DecodeImplicitRegion(body)
		return s.SetDataRegion(idx, r)
	default:
		r := DecodeExplicitRegion(body)
		return s.SetExplicitRegion(idx, r)
	}
}

// SetRegionByNumber programs region n (flat numbering) from a raw region_t
// buffer; used by the hfi_set_region instruction.
func (s *State) SetRegionByNumber(n int, body []byte) *Fault {
	kind, idx, err := regionKind(n)
	if err != nil {
		return s.fault(FaultBadConfig, 0, false)
	}
	switch kind {
	case "code":
		return s.SetCodeRegion(idx, DecodeImplicitRegion(body))
	case "data":
		return s.SetDataRegion(idx, DecodeImplicitRegion(body))
	default:
		return s.SetExplicitRegion(idx, DecodeExplicitRegion(body))
	}
}

// GetRegionByNumber serializes region n into region_t form; used by the
// hfi_get_region instruction. The second return is false for an
// out-of-range region number.
func (s *State) GetRegionByNumber(n int) ([RegionTSize]byte, bool) {
	kind, idx, err := regionKind(n)
	if err != nil {
		return [RegionTSize]byte{}, false
	}
	switch kind {
	case "code":
		return EncodeImplicitRegion(s.Bank.Code[idx]), true
	case "data":
		return EncodeImplicitRegion(s.Bank.Data[idx]), true
	default:
		return EncodeExplicitRegion(s.Bank.Expl[idx]), true
	}
}

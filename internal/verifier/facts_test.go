package verifier

import (
	"errors"
	"testing"

	"hfi/internal/isa"
	"hfi/internal/sfi"
)

// analyzeOK runs Analyze under scheme with the shared test geometry and
// fails the test on rejection.
func analyzeOK(t *testing.T, p *isa.Program, scheme sfi.Scheme) *Facts {
	t.Helper()
	f, err := Analyze(p, testCfg(scheme))
	if err != nil {
		t.Fatalf("%v: analyze rejected: %v", scheme, err)
	}
	return f
}

// auditRule corrupts nothing itself — it audits claimed against the test
// geometry and returns the first rejection rule ("" if accepted).
func auditRule(t *testing.T, p *isa.Program, scheme sfi.Scheme, claimed *Facts) string {
	t.Helper()
	err := AuditFacts(p, testCfg(scheme), claimed)
	if err == nil {
		return ""
	}
	var re *RejectError
	if !errors.As(err, &re) {
		t.Fatalf("audit error is %T, want *RejectError: %v", err, err)
	}
	return re.First().Rule
}

// --- dominators --------------------------------------------------------

// TestDominatorsDiamond pins the Cooper-Harvey-Kennedy pass on the
// canonical diamond: neither arm dominates the join, the entry dominates
// everything, every block dominates itself.
func TestDominatorsDiamond(t *testing.T) {
	b := isa.NewBuilder(0)
	b.MovImm(isa.R0, 0)
	b.BrImm(isa.CondEQ, isa.R0, 0, "right") // 1: split
	b.Label("left")
	b.MovImm(isa.R1, 1) // 2
	b.Jmp("join")       // 3
	b.Label("right")
	b.MovImm(isa.R1, 2) // 4
	b.Label("join")
	b.Halt() // 5
	p := b.Build()

	g := BuildCFG(p)
	entry := g.BlockOf(0)
	idom := g.Dominators(entry)
	left, right, join := g.BlockOf(2), g.BlockOf(4), g.BlockOf(5)

	if idom[join] != entry {
		t.Errorf("idom(join) = %d, want entry %d", idom[join], entry)
	}
	for _, blk := range []int{left, right, join} {
		if !Dominates(idom, entry, blk) {
			t.Errorf("entry should dominate block %d", blk)
		}
		if !Dominates(idom, blk, blk) {
			t.Errorf("block %d should dominate itself", blk)
		}
	}
	if Dominates(idom, left, join) || Dominates(idom, right, join) {
		t.Error("a diamond arm must not dominate the join")
	}
}

// TestDominatorsUnreachable: blocks the entry cannot reach stay idom -1
// and dominate nothing.
func TestDominatorsUnreachable(t *testing.T) {
	b := isa.NewBuilder(0)
	b.Jmp("end") // 0
	b.Label("dead")
	b.MovImm(isa.R0, 1) // 1: unreachable
	b.Label("end")
	b.Halt() // 2
	p := b.Build()

	g := BuildCFG(p)
	entry := g.BlockOf(0)
	idom := g.Dominators(entry)
	dead := g.BlockOf(1)
	if idom[dead] != -1 {
		t.Errorf("idom(dead) = %d, want -1", idom[dead])
	}
	if Dominates(idom, entry, dead) {
		t.Error("entry must not dominate an unreachable block")
	}
}

// --- CFG edge cases feeding the fact analysis --------------------------

// testHeapBase mirrors testCfg's heap base. The root entry trusts no
// register (the springboard sets them), so accepted hand-written programs
// establish the heap-base invariant themselves; the reserved-register
// check admits the write because the value is exactly the heap base.
const testHeapBase = int64(0x1_0000_0000)

// TestFactFallThroughDominatedCheck: a conditional branch falls through
// into a block repeating an identical access; the fall-through edge is a
// real CFG edge, so the first check dominates and the second gets the
// FactDominated elision fact with the first as its witness.
func TestFactFallThroughDominatedCheck(t *testing.T) {
	b := isa.NewBuilder(0)
	b.MovImm(sfi.HeapBaseReg, testHeapBase)          // 0
	b.MovImm(isa.R1, 0x100)                          // 1
	b.Load(8, isa.R2, sfi.HeapBaseReg, isa.R1, 1, 0) // 2: check A
	b.BrImm(isa.CondEQ, isa.R2, 0, "skip")           // 3
	b.Load(8, isa.R3, sfi.HeapBaseReg, isa.R1, 1, 0) // 4: fall-through, same key
	b.Label("skip")
	b.Halt() // 5
	p := b.Build()

	f := analyzeOK(t, p, sfi.GuardPages)
	if f.Bits[2]&FactResident == 0 {
		t.Error("first access has an exact in-heap EA; want FactResident")
	}
	if f.Bits[4]&FactDominated == 0 {
		t.Fatalf("fall-through repeat of an identical check not marked dominated (bits %#x)", f.Bits[4])
	}
	if f.Mem[4].DomSite != 2 {
		t.Errorf("DomSite = %d, want 2", f.Mem[4].DomSite)
	}
	if r := auditRule(t, p, sfi.GuardPages, f); r != "" {
		t.Errorf("audit rejected the genuine artifact: %s", r)
	}
}

// TestFactBackEdgeDropsPageUniformity: in a loop the index register's
// interval widens across the back-edge until the access spans multiple
// pages, so the loop block must carry no page-uniform range for it — and
// the self-incremented index kills the same-key availability, so it is
// not dominated either. The access stays resident (the whole interval is
// inside the committed heap): the block-level claim is dropped without
// touching the instruction-level one.
func TestFactBackEdgeDropsPageUniformity(t *testing.T) {
	b := isa.NewBuilder(0)
	b.MovImm(sfi.HeapBaseReg, testHeapBase) // 0
	b.MovImm(isa.R1, 0)                     // 1
	b.Label("loop")
	b.Load(8, isa.R2, sfi.HeapBaseReg, isa.R1, 1, 0) // 2
	b.AddImm(isa.R1, isa.R1, 8)                      // 3
	b.BrImm(isa.CondLTU, isa.R1, 8192, "loop")       // 4
	b.Halt()                                         // 5
	p := b.Build()

	f := analyzeOK(t, p, sfi.GuardPages)
	if f.Bits[2]&FactResident == 0 {
		t.Error("loop access is bounded within the committed heap; want FactResident")
	}
	if f.Bits[2]&FactDominated != 0 {
		t.Error("self-incremented index must kill same-key availability across the back-edge")
	}
	for _, blk := range f.Blocks {
		for _, u := range blk.Uniform {
			if u.From <= 2 && 2 < u.To {
				t.Fatalf("loop access spans pages [%#x,%#x] yet sits in uniform range %+v",
					f.Mem[2].EA.Lo, f.Mem[2].EA.Hi, u)
			}
		}
	}

	// Control: the same accesses laid out straight-line with exact EAs on
	// one page do form a uniform run.
	c := isa.NewBuilder(0)
	c.MovImm(sfi.HeapBaseReg, testHeapBase)          // 0
	c.MovImm(isa.R1, 0x100)                          // 1
	c.Load(8, isa.R2, sfi.HeapBaseReg, isa.R1, 1, 0) // 2
	c.Load(8, isa.R3, sfi.HeapBaseReg, isa.R1, 1, 8) // 3
	c.Halt()                                         // 4
	cf := analyzeOK(t, c.Build(), sfi.GuardPages)
	found := false
	for _, blk := range cf.Blocks {
		for _, u := range blk.Uniform {
			if u.From <= 2 && 3 < u.To {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("straight-line same-page accesses carry no uniform range: %+v", cf.Blocks)
	}
}

// TestFactIndirectTargetDropsDomination: the CFG over-approximates an
// indirect jump's successors with the whole address-taken set (every
// symbol and every decoded code address). Even though execution only ever
// reaches the repeated access through the first check, the spurious edge
// from the dispatcher to the "mid" symbol makes the check non-dominating,
// and the fact must be dropped.
func TestFactIndirectTargetDropsDomination(t *testing.T) {
	b := isa.NewBuilder(0)
	b.MovImm(sfi.HeapBaseReg, testHeapBase) // 0
	b.MovImm(isa.R1, 0x100)                 // 1
	b.MovImm(isa.R3, 4*isa.InstrBytes)      // 2: address of "work"
	b.JmpInd(isa.R3)                        // 3: succs = {work, mid}
	b.Label("work")
	b.Load(8, isa.R2, sfi.HeapBaseReg, isa.R1, 1, 0) // 4: check A
	b.Jmp("mid")                                     // 5
	b.Label("mid")
	b.Load(8, isa.R4, sfi.HeapBaseReg, isa.R1, 1, 0) // 6: same key as A
	b.Halt()                                         // 7
	p := b.Build()

	f := analyzeOK(t, p, sfi.GuardPages)
	if f.Bits[6]&FactDominated != 0 {
		t.Fatal("indirect over-approximation adds an edge bypassing the check; the dominated fact must drop")
	}

	// Control: with a direct jump the dispatcher edge disappears and the
	// same repeat access is dominated.
	c := isa.NewBuilder(0)
	c.MovImm(sfi.HeapBaseReg, testHeapBase) // 0
	c.MovImm(isa.R1, 0x100)                 // 1
	c.Jmp("work")                           // 2
	c.Label("work")
	c.Load(8, isa.R2, sfi.HeapBaseReg, isa.R1, 1, 0) // 3
	c.Jmp("mid")                                     // 4
	c.Label("mid")
	c.Load(8, isa.R4, sfi.HeapBaseReg, isa.R1, 1, 0) // 5
	c.Halt()                                         // 6
	cf := analyzeOK(t, c.Build(), sfi.GuardPages)
	if cf.Bits[5]&FactDominated == 0 {
		t.Errorf("direct-jump control: repeat access not dominated (bits %#x)", cf.Bits[5])
	}
	if cf.Mem[5].DomSite != 3 {
		t.Errorf("direct-jump control: DomSite = %d, want 3", cf.Mem[5].DomSite)
	}
}

// TestIndirectComputedTargetRejected: an indirect branch whose target is
// a provable constant but NOT address-taken (no symbol or movi immediate
// names it) must be rejected. The CFG's indirect successor edges only
// cover the address-taken set, so admitting such a target would let
// concrete execution enter a block mid-way with no edge witnessing it —
// e.g. past a "dominating" check, whose FactDominated elision would then
// silently skip the page decision for a check that never ran.
func TestIndirectComputedTargetRejected(t *testing.T) {
	build := func(call bool) *isa.Program {
		b := isa.NewBuilder(0)
		b.MovImm(sfi.HeapBaseReg, testHeapBase)  // 0
		b.MovImm(isa.R1, 0x100)                  // 1
		b.MovImm(isa.R3, 5*isa.InstrBytes)       // 2: address-taken: instr 5
		b.AddImm(isa.R3, isa.R3, isa.InstrBytes) // 3: r3 = 6*IB — computed singleton
		if call {
			b.CallInd(isa.R3) // 4: resolves to instr 6, not address-taken
		} else {
			b.JmpInd(isa.R3) // 4
		}
		b.Load(8, isa.R2, sfi.HeapBaseReg, isa.R1, 1, 0) // 5: check A (address-taken leader)
		b.Load(8, isa.R4, sfi.HeapBaseReg, isa.R1, 1, 0) // 6: mid-block entry past check A
		b.Halt()                                         // 7
		return b.Build()
	}
	for _, tc := range []struct {
		name string
		call bool
	}{{"jmpi", false}, {"calli", true}} {
		t.Run(tc.name, func(t *testing.T) {
			p := build(tc.call)
			if got := rejectRule(t, p, sfi.GuardPages); got != "indirect-target" {
				t.Fatalf("rule = %q, want indirect-target", got)
			}
			if _, err := Analyze(p, testCfg(sfi.GuardPages)); err == nil {
				t.Fatal("Analyze admitted a computed non-address-taken indirect target")
			}
		})
	}

	// Control: the same computed arithmetic landing ON an address-taken
	// instruction (a symbol) stays admissible — the CFG edge exists, so
	// the over-approximation holds and domination soundly drops.
	c := isa.NewBuilder(0)
	c.MovImm(sfi.HeapBaseReg, testHeapBase)    // 0
	c.MovImm(isa.R1, 0x100)                    // 1
	c.MovImm(isa.R3, 3*isa.InstrBytes)         // 2: address-taken: instr 3
	c.AddImm(isa.R3, isa.R3, 2*isa.InstrBytes) // 3: r3 = 5*IB = "work"
	c.JmpInd(isa.R3)                           // 4
	c.Label("work")
	c.Load(8, isa.R2, sfi.HeapBaseReg, isa.R1, 1, 0) // 5
	c.Halt()                                         // 6
	cf := analyzeOK(t, c.Build(), sfi.GuardPages)
	if cf.Bits[5]&FactResident == 0 {
		t.Error("control: admitted computed-to-symbol target lost the resident fact")
	}
}

// --- audit corruption --------------------------------------------------

// TestAuditFactsRejectsCorruption hand-corrupts a genuine artifact one
// field at a time and pins the audit rule that must catch each: this is
// the unit-level face of the mutation bench's fact operators.
func TestAuditFactsRejectsCorruption(t *testing.T) {
	b := isa.NewBuilder(0)
	b.MovImm(sfi.HeapBaseReg, testHeapBase)
	b.MovImm(isa.R1, 0x100)
	b.Load(8, isa.R2, sfi.HeapBaseReg, isa.R1, 1, 0)
	b.BrImm(isa.CondEQ, isa.R2, 0, "skip")
	b.Load(8, isa.R3, sfi.HeapBaseReg, isa.R1, 1, 0)
	b.Label("skip")
	b.Halt()
	p := b.Build()
	f := analyzeOK(t, p, sfi.GuardPages)

	cases := []struct {
		name    string
		corrupt func(c *Facts)
		rule    string
	}{
		{"genuine artifact accepted", func(c *Facts) {}, ""},
		{"widened interval", func(c *Facts) { c.Mem[2].EA.Hi += sfi.GuardReservation }, "fact-window"},
		{"forged bit", func(c *Facts) { c.Bits[5] |= FactHostcall }, "fact-claim"},
		{"bogus dominator witness", func(c *Facts) { c.Mem[4].DomSite = 0 }, "fact-dominated"},
		{"tampered block cost", func(c *Facts) { c.Blocks[0].Cost.ALU++ }, "fact-block"},
		{"shape mismatch", func(c *Facts) { c.Bits = c.Bits[:len(c.Bits)-1] }, "fact-shape"},
		{"nil artifact", nil, "fact-shape"},
	}
	for _, tc := range cases {
		var claimed *Facts
		if tc.corrupt != nil {
			claimed = f.Clone()
			tc.corrupt(claimed)
		}
		got := auditRule(t, p, sfi.GuardPages, claimed)
		if got != tc.rule {
			t.Errorf("%s: audit rule = %q, want %q", tc.name, got, tc.rule)
		}
	}
}

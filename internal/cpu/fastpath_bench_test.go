package cpu

import (
	"testing"

	"hfi/internal/kernel"
)

// The interpreter throughput benchmarks run the load/store-heavy kernel the
// fast-path work is tuned against: a fill loop (mul, store, add, branch)
// followed by a sum loop (load, add, add, branch), all inside one code page
// and one data page. scripts/bench.sh records these numbers in
// BENCH_PR3.json; the 0 allocs/op requirement is enforced separately by
// TestInterpHotLoopZeroAllocs so `make verify` catches regressions without
// running benchmarks.

func benchInterp(b *testing.B, noFast bool) {
	m := NewMachine()
	const buf = 0x100000
	if err := m.AS.MapFixed(buf, 0x10000, kernel.ProtRead|kernel.ProtWrite); err != nil {
		b.Fatal(err)
	}
	m.MustLoadProgram(buildMemKernel(0x1000, buf, 64))
	ip := NewInterp(m)
	ip.NoFastPath = noFast
	m.PC = 0x1000
	if res := ip.Run(0); res.Reason != StopHalt {
		b.Fatalf("warmup stop = %v", res.Reason)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PC = 0x1000
		ip.Run(0)
	}
	b.ReportMetric(float64(m.Instret)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkInterpMemKernel measures the interpreter with its fast paths on
// (the default): direct-indexed code cache, 1-entry data-translation and
// exec-permission caches, and the memory hierarchy's MRU short-circuits.
func BenchmarkInterpMemKernel(b *testing.B) { benchInterp(b, false) }

// BenchmarkInterpMemKernelNoFastPath forces every fetch through the binary
// search and every access through the full HFI + MMU checks — the
// differential-testing configuration, and the floor the fast paths are
// measured against.
func BenchmarkInterpMemKernelNoFastPath(b *testing.B) { benchInterp(b, true) }

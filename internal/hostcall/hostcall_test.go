package hostcall

import (
	"bytes"
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

const (
	testHeapBase = uint64(0x10_0000)
	testHeapSize = uint64(1) << 16
)

func testEnv(t testing.TB, seed uint64, tenant string) (*World, *Env, *cpu.Machine) {
	t.Helper()
	m := cpu.NewMachine()
	if err := m.AS.MapFixed(testHeapBase, testHeapSize, kernel.ProtRead|kernel.ProtWrite); err != nil {
		t.Fatal(err)
	}
	w := NewWorld(seed)
	e := w.NewEnv(tenant)
	e.Bind(m, testHeapBase, testHeapSize)
	return w, e, m
}

// call drives the installed dispatcher exactly as the hostcall gate
// instruction does: number in R0, args in R1-R5, result back in R0.
func call(m *cpu.Machine, num uint64, args ...uint64) uint64 {
	m.Regs[isa.R0] = num
	for i, a := range args {
		m.Regs[isa.R1+isa.Reg(i)] = a
	}
	m.HostcallFn(&m.Regs)
	return m.Regs[isa.R0]
}

func isErrno(r, errno uint64) bool { return r == negErrno(errno) }

func TestAbiVersion(t *testing.T) {
	_, _, m := testEnv(t, 1, "alice")
	if got := call(m, NumAbiVersion); got != Version {
		t.Fatalf("abi_version = %d, want %d", got, Version)
	}
	if got := call(m, 999); !isErrno(got, kernel.ENOSYS) {
		t.Fatalf("unknown number = %#x, want -ENOSYS", got)
	}
}

func TestClocksDeterministic(t *testing.T) {
	_, _, m1 := testEnv(t, 7, "alice")
	_, _, m2 := testEnv(t, 7, "alice")
	w1 := call(m1, NumClockWall)
	if w2 := call(m2, NumClockWall); w1 != w2 {
		t.Fatalf("same seed+tenant: wall clocks differ (%d vs %d)", w1, w2)
	}
	_, _, m3 := testEnv(t, 7, "bob")
	if w3 := call(m3, NumClockWall); w3 == w1 {
		t.Fatal("different tenants share a wall-clock stream")
	}
	// Monotonic tracks the simulated kernel clock.
	before := call(m1, NumClockMonotonic)
	m1.Kern.Clock.Advance(1_000)
	if after := call(m1, NumClockMonotonic); after <= before {
		t.Fatalf("monotonic did not advance: %d -> %d", before, after)
	}
}

func TestRandomSeeded(t *testing.T) {
	_, _, m1 := testEnv(t, 9, "alice")
	_, _, m2 := testEnv(t, 9, "alice")
	if r := call(m1, NumRandomGet, 64, 33); r != 0 {
		t.Fatalf("random_get = %#x", r)
	}
	if r := call(m2, NumRandomGet, 64, 33); r != 0 {
		t.Fatalf("random_get = %#x", r)
	}
	b1 := make([]byte, 33)
	b2 := make([]byte, 33)
	m1.AS.Mem.ReadBytes(testHeapBase+64, b1)
	m2.AS.Mem.ReadBytes(testHeapBase+64, b2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed: random streams differ")
	}
	if bytes.Equal(b1, make([]byte, 33)) {
		t.Fatal("random_get left the buffer zero")
	}
	// The stream advances: a second fill differs from the first.
	call(m1, NumRandomGet, 64, 33)
	b3 := make([]byte, 33)
	m1.AS.Mem.ReadBytes(testHeapBase+64, b3)
	if bytes.Equal(b1, b3) {
		t.Fatal("random stream did not advance")
	}
}

func TestMarshallingBounds(t *testing.T) {
	_, e, m := testEnv(t, 1, "alice")
	cases := []struct {
		name string
		ret  uint64
	}{
		{"ptr past heap", call(m, NumRandomGet, testHeapSize+1, 8)},
		{"len past heap end", call(m, NumRandomGet, testHeapSize-4, 64)},
		{"wrapping ptr", call(m, NumRandomGet, ^uint64(0)-7, 64)},
	}
	for _, c := range cases {
		if !isErrno(c.ret, kernel.EFAULT) {
			t.Errorf("%s: ret = %#x, want -EFAULT", c.name, c.ret)
		}
	}
	if r := call(m, NumRandomGet, 0, MaxIOBytes+1); !isErrno(r, kernel.EINVAL) {
		t.Errorf("oversized transfer = %#x, want -EINVAL", r)
	}
	if e.BytesOut != 0 {
		t.Fatalf("rejected transfers still counted %d bytes out", e.BytesOut)
	}
}

func TestFdStreams(t *testing.T) {
	_, e, m := testEnv(t, 1, "alice")
	e.BeginRequest([]byte("hello world"))
	// Read the request in two chunks through fd 0.
	if n := call(m, NumFdRead, FdStdin, 0, 5); n != 5 {
		t.Fatalf("fd_read = %d, want 5", n)
	}
	if n := call(m, NumFdRead, FdStdin, 5, 64); n != 6 {
		t.Fatalf("fd_read tail = %d, want 6", n)
	}
	if n := call(m, NumFdRead, FdStdin, 0, 64); n != 0 {
		t.Fatalf("fd_read at EOF = %d, want 0", n)
	}
	// Echo it back through fd 1.
	if n := call(m, NumFdWrite, FdStdout, 0, 11); n != 11 {
		t.Fatalf("fd_write = %d, want 11", n)
	}
	if got := string(e.ResponseBody()); got != "hello world" {
		t.Fatalf("response = %q", got)
	}
	// The next request starts with fresh streams but keeps files.
	e.BeginRequest([]byte("x"))
	if len(e.ResponseBody()) != 0 {
		t.Fatal("stdout not reset between requests")
	}
}

func TestFdFiles(t *testing.T) {
	_, e, m := testEnv(t, 1, "alice")
	m.AS.Mem.WriteBytes(testHeapBase, []byte("log.txt"))
	m.AS.Mem.WriteBytes(testHeapBase+100, []byte("payload"))

	if r := call(m, NumFdOpen, 0, 7, OpenRead); !isErrno(r, kernel.ENOENT) {
		t.Fatalf("open missing = %#x, want -ENOENT", r)
	}
	fd := call(m, NumFdOpen, 0, 7, OpenCreate)
	if int64(fd) < 3 {
		t.Fatalf("open create = %#x", fd)
	}
	if n := call(m, NumFdWrite, fd, 100, 7); n != 7 {
		t.Fatalf("write = %d", n)
	}
	if r := call(m, NumFdClose, fd); r != 0 {
		t.Fatalf("close = %#x", r)
	}
	if r := call(m, NumFdClose, fd); !isErrno(r, kernel.EBADF) {
		t.Fatalf("double close = %#x, want -EBADF", r)
	}
	// Reopen and read back; file state survived the request boundary.
	e.BeginRequest(nil)
	fd = call(m, NumFdOpen, 0, 7, OpenRead)
	if n := call(m, NumFdRead, fd, 200, 64); n != 7 {
		t.Fatalf("readback = %d", n)
	}
	got := make([]byte, 7)
	m.AS.Mem.ReadBytes(testHeapBase+200, got)
	if string(got) != "payload" {
		t.Fatalf("readback = %q", got)
	}
	if r := call(m, NumFdWrite, fd, 100, 7); !isErrno(r, kernel.EBADF) {
		t.Fatalf("write to read-only fd = %#x, want -EBADF", r)
	}
}

func TestFdReadAfterTruncate(t *testing.T) {
	// Regression: fd_open(OpenCreate) truncates a file under a live read
	// fd. The stale offset must clamp to the new length — the unsigned
	// remainder would otherwise underflow and the copy would panic.
	_, _, m := testEnv(t, 1, "alice")
	m.AS.Mem.WriteBytes(testHeapBase, []byte("f"))
	m.AS.Mem.WriteBytes(testHeapBase+100, bytes.Repeat([]byte{'x'}, 20))

	wfd := call(m, NumFdOpen, 0, 1, OpenCreate)
	if n := call(m, NumFdWrite, wfd, 100, 20); n != 20 {
		t.Fatalf("write = %d", n)
	}
	rfd := call(m, NumFdOpen, 0, 1, OpenRead)
	if n := call(m, NumFdRead, rfd, 200, 20); n != 20 {
		t.Fatalf("read = %d", n)
	}
	// Truncate under the live read fd, then read through it again.
	call(m, NumFdOpen, 0, 1, OpenCreate)
	if n := call(m, NumFdRead, rfd, 200, 20); n != 0 {
		t.Fatalf("read after truncate = %#x, want 0 (EOF)", n)
	}
	// The clamped fd keeps working once the file regrows.
	if n := call(m, NumFdWrite, wfd, 100, 5); n != 5 {
		t.Fatalf("regrow write = %d", n)
	}
	if n := call(m, NumFdRead, rfd, 200, 20); n != 5 {
		t.Fatalf("read after regrow = %d, want 5", n)
	}
}

func TestFsQuota(t *testing.T) {
	_, e, m := testEnv(t, 1, "alice")
	e.world.FS = FSQuota{MaxFiles: 2, MaxFDs: 3, MaxBytes: 40, MaxStdoutBytes: 8}
	m.AS.Mem.WriteBytes(testHeapBase, []byte("f1f2f3"))
	m.AS.Mem.WriteBytes(testHeapBase+32, bytes.Repeat([]byte{7}, 64))

	fd1 := call(m, NumFdOpen, 0, 2, OpenCreate)
	fd2 := call(m, NumFdOpen, 2, 2, OpenCreate)
	if int64(fd1) < 0 || int64(fd2) < 0 {
		t.Fatalf("opens = %#x, %#x", fd1, fd2)
	}
	// Third file: entry quota.
	if r := call(m, NumFdOpen, 4, 2, OpenCreate); !isErrno(r, kernel.EDQUOT) {
		t.Fatalf("file 3 = %#x, want -EDQUOT", r)
	}
	// Reopening an existing name is a new fd, not a new file; the fourth
	// simultaneous descriptor trips MaxFDs.
	fd3 := call(m, NumFdOpen, 0, 2, OpenRead)
	if int64(fd3) < 0 {
		t.Fatalf("fd3 = %#x", fd3)
	}
	if r := call(m, NumFdOpen, 2, 2, OpenRead); !isErrno(r, kernel.EDQUOT) {
		t.Fatalf("fd 4 = %#x, want -EDQUOT", r)
	}
	if r := call(m, NumFdClose, fd3); r != 0 {
		t.Fatalf("close = %#x", r)
	}
	// Byte quota: the two names charged 4 bytes, so 36 content bytes fit.
	if n := call(m, NumFdWrite, fd1, 32, 30); n != 30 {
		t.Fatalf("write = %d", n)
	}
	if r := call(m, NumFdWrite, fd2, 32, 7); !isErrno(r, kernel.EDQUOT) {
		t.Fatalf("over-quota write = %#x, want -EDQUOT", r)
	}
	if n := call(m, NumFdWrite, fd2, 32, 6); n != 6 {
		t.Fatalf("fitting write = %d", n)
	}
	// Truncation frees content bytes for reuse.
	call(m, NumFdOpen, 0, 2, OpenCreate)
	if n := call(m, NumFdWrite, fd2, 32, 20); n != 20 {
		t.Fatalf("post-truncate write = %d", n)
	}
	// Stdout cap is per request.
	e.BeginRequest(nil)
	if n := call(m, NumFdWrite, FdStdout, 32, 8); n != 8 {
		t.Fatalf("stdout write = %d", n)
	}
	if r := call(m, NumFdWrite, FdStdout, 32, 1); !isErrno(r, kernel.EDQUOT) {
		t.Fatalf("stdout overflow = %#x, want -EDQUOT", r)
	}
	if e.QuotaRejects != 4 {
		t.Fatalf("QuotaRejects = %d, want 4", e.QuotaRejects)
	}
	// ResetSession returns the footprint to zero.
	e.ResetSession()
	fd := call(m, NumFdOpen, 0, 2, OpenCreate)
	if n := call(m, NumFdWrite, fd, 32, 38); n != 38 {
		t.Fatalf("post-reset write = %d", n)
	}
}

func TestKvSharedStoreTenantIsolation(t *testing.T) {
	m1 := cpu.NewMachine()
	m2 := cpu.NewMachine()
	for _, m := range []*cpu.Machine{m1, m2} {
		if err := m.AS.MapFixed(testHeapBase, testHeapSize, kernel.ProtRead|kernel.ProtWrite); err != nil {
			t.Fatal(err)
		}
	}
	w := NewWorld(3)
	alice := w.NewEnv("alice")
	bob := w.NewEnv("bob")
	alice.Bind(m1, testHeapBase, testHeapSize)
	bob.Bind(m2, testHeapBase, testHeapSize)

	m1.AS.Mem.WriteBytes(testHeapBase, []byte("keysecret"))
	if r := call(m1, NumKvPut, 0, 3, 3, 6); r != 0 {
		t.Fatalf("kv_put = %#x", r)
	}
	if n := call(m1, NumKvGet, 0, 3, 100, 64); n != 6 {
		t.Fatalf("kv_get = %d, want 6", n)
	}
	got := make([]byte, 6)
	m1.AS.Mem.ReadBytes(testHeapBase+100, got)
	if string(got) != "secret" {
		t.Fatalf("kv_get read back %q", got)
	}
	// Same key, same shared store — invisible to the other tenant.
	m2.AS.Mem.WriteBytes(testHeapBase, []byte("key"))
	if r := call(m2, NumKvGet, 0, 3, 100, 64); !isErrno(r, kernel.ENOENT) {
		t.Fatalf("cross-tenant kv_get = %#x, want -ENOENT", r)
	}
	if r := call(m1, NumKvDelete, 0, 3); r != 0 {
		t.Fatalf("kv_delete = %#x", r)
	}
	if r := call(m1, NumKvGet, 0, 3, 100, 64); !isErrno(r, kernel.ENOENT) {
		t.Fatalf("kv_get after delete = %#x, want -ENOENT", r)
	}
}

func TestKvGetTruncationDetectable(t *testing.T) {
	_, _, m := testEnv(t, 1, "alice")
	m.AS.Mem.WriteBytes(testHeapBase, []byte("keysecret"))
	if r := call(m, NumKvPut, 0, 3, 3, 6); r != 0 {
		t.Fatalf("kv_put = %#x", r)
	}
	// Undersized buffer: the full length comes back, only vCap bytes land.
	m.AS.Mem.WriteBytes(testHeapBase+100, bytes.Repeat([]byte{0xee}, 8))
	if n := call(m, NumKvGet, 0, 3, 100, 4); n != 6 {
		t.Fatalf("truncated kv_get = %d, want full length 6", n)
	}
	got := make([]byte, 8)
	m.AS.Mem.ReadBytes(testHeapBase+100, got)
	if string(got[:4]) != "secr" || !bytes.Equal(got[4:], bytes.Repeat([]byte{0xee}, 4)) {
		t.Fatalf("truncated kv_get wrote %q past its capacity", got)
	}
	// Oversized capacity: EINVAL, like every other marshalled length.
	if r := call(m, NumKvGet, 0, 3, 100, MaxIOBytes+1); !isErrno(r, kernel.EINVAL) {
		t.Fatalf("oversized vCap = %#x, want -EINVAL", r)
	}
}

func TestKvQuota(t *testing.T) {
	_, e, m := testEnv(t, 1, "alice")
	e.world.KV = NewKV(KVQuota{MaxEntries: 2, MaxBytes: 64})
	m.AS.Mem.WriteBytes(testHeapBase, []byte("k1k2k3"))
	m.AS.Mem.WriteBytes(testHeapBase+32, bytes.Repeat([]byte{7}, 32))

	if r := call(m, NumKvPut, 0, 2, 32, 8); r != 0 {
		t.Fatalf("put 1 = %#x", r)
	}
	if r := call(m, NumKvPut, 2, 2, 32, 8); r != 0 {
		t.Fatalf("put 2 = %#x", r)
	}
	// Third key: entry quota.
	if r := call(m, NumKvPut, 4, 2, 32, 8); !isErrno(r, kernel.EDQUOT) {
		t.Fatalf("put 3 = %#x, want -EDQUOT", r)
	}
	// Oversized value under the same key: byte quota.
	if r := call(m, NumKvPut, 0, 2, 32, 63); !isErrno(r, kernel.EDQUOT) {
		t.Fatalf("fat put = %#x, want -EDQUOT", r)
	}
	if e.QuotaRejects != 2 {
		t.Fatalf("QuotaRejects = %d, want 2", e.QuotaRejects)
	}
	// Overwrite within quota frees the old bytes first.
	if r := call(m, NumKvPut, 0, 2, 32, 20); r != 0 {
		t.Fatalf("overwrite = %#x", r)
	}
}

func TestCountersAndCost(t *testing.T) {
	_, e, m := testEnv(t, 1, "alice")
	start := m.Kern.Clock.Now()
	costs := m.Kern.Costs

	call(m, NumClockMonotonic)
	if got := m.Kern.Clock.Now() - start; got != costs.HostcallBase {
		t.Fatalf("scalar call cost = %dns, want %d", got, costs.HostcallBase)
	}
	start = m.Kern.Clock.Now()
	call(m, NumRandomGet, 0, 4096)
	want := costs.HostcallBase + 4*costs.HostcallCopyPerKiB
	if got := m.Kern.Clock.Now() - start; got != want {
		t.Fatalf("4KiB call cost = %dns, want %d", got, want)
	}
	if e.Calls != 2 || e.BytesOut != 4096 || e.BytesIn != 0 {
		t.Fatalf("counters = calls %d in %d out %d", e.Calls, e.BytesIn, e.BytesOut)
	}
}

func TestFaultInjection(t *testing.T) {
	_, e, m := testEnv(t, 1, "alice")
	e.BeginRequest([]byte("body"))

	// FaultErr: exactly one resource call fails, then the request heals.
	e.InjectFault(FaultErr)
	if r := call(m, NumFdRead, FdStdin, 0, 4); !isErrno(r, kernel.EIO) {
		t.Fatalf("faulted read = %#x, want -EIO", r)
	}
	if r := call(m, NumFdRead, FdStdin, 0, 4); r != 4 {
		t.Fatalf("post-fault read = %d, want 4", r)
	}
	// Scalar calls are never the faulted "resource call".
	e.InjectFault(FaultErr)
	if r := call(m, NumClockMonotonic); int64(r) < 0 {
		t.Fatalf("clock faulted: %#x", r)
	}

	// FaultQuota: puts are refused for the whole request and accounted.
	e.BeginRequest(nil)
	e.InjectFault(FaultQuota)
	m.AS.Mem.WriteBytes(testHeapBase, []byte("kv"))
	if r := call(m, NumKvPut, 0, 2, 0, 2); !isErrno(r, kernel.EDQUOT) {
		t.Fatalf("quota-faulted put = %#x, want -EDQUOT", r)
	}
	if e.QuotaRejects != 1 {
		t.Fatalf("QuotaRejects = %d, want 1", e.QuotaRejects)
	}

	// FaultSlow: same result, fatter bill.
	e.BeginRequest(nil)
	before := m.Kern.Clock.Now()
	call(m, NumClockMonotonic)
	normal := m.Kern.Clock.Now() - before
	e.InjectFault(FaultSlow)
	before = m.Kern.Clock.Now()
	call(m, NumClockMonotonic)
	if slow := m.Kern.Clock.Now() - before; slow != normal+SlowFaultNs {
		t.Fatalf("slow call cost = %dns, want %d", slow, normal+SlowFaultNs)
	}
	// BeginRequest clears the arm.
	e.BeginRequest(nil)
	before = m.Kern.Clock.Now()
	call(m, NumClockMonotonic)
	if got := m.Kern.Clock.Now() - before; got != normal {
		t.Fatalf("fault leaked across BeginRequest: %dns", got)
	}
}

// BenchmarkHostcallRoundTrip measures a full guest->host->guest round
// trip through the interpreter: call into the verified gate, dispatch,
// 1 KiB of seeded randomness marshalled back into linear memory, return.
// The marshalling fast path must not allocate.
func BenchmarkHostcallRoundTrip(b *testing.B) {
	_, e, m := testEnv(b, 42, "bench")
	const stackBase, stackSize = uint64(0x20_0000), uint64(0x1_0000)
	if err := m.AS.MapFixed(stackBase, stackSize, kernel.ProtRead|kernel.ProtWrite); err != nil {
		b.Fatal(err)
	}

	asm := isa.NewBuilder(0x1000)
	asm.Label("__start")
	asm.MovImm(isa.R0, NumRandomGet)
	asm.MovImm(isa.R1, 4096) // offset of the target buffer
	asm.MovImm(isa.R2, 1024) // bytes per round trip
	asm.Call("__hostcall")
	asm.Halt()
	asm.Label("__hostcall")
	asm.Hostcall()
	asm.Ret()
	prog := asm.Build()
	if err := m.LoadProgram(prog); err != nil {
		b.Fatal(err)
	}
	entry := prog.Entry("__start")

	ip := cpu.NewInterp(m)
	run := func() {
		m.Regs[isa.SP] = stackBase + stackSize
		m.PC = entry
		if res := ip.Run(100); res.Reason != cpu.StopHalt {
			b.Fatalf("stop = %v", res.Reason)
		}
		if int64(m.Regs[isa.R0]) < 0 {
			b.Fatalf("hostcall failed: %#x", m.Regs[isa.R0])
		}
	}
	run() // warm the fetch/decode caches outside the measured region

	b.ReportAllocs()
	simStart := m.Kern.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	if e.Calls != uint64(b.N)+1 {
		b.Fatalf("calls = %d, want %d", e.Calls, b.N+1)
	}
	b.ReportMetric(float64(e.BytesOut)/float64(e.Calls), "marshalled-B/op")
	// Cost-modeled time per round trip: what the simulated platform billed
	// (gate transition + HostcallBase + per-KiB copy), not host wall time.
	b.ReportMetric(float64(m.Kern.Clock.Now()-simStart)/float64(b.N), "sim-ns/op")
}

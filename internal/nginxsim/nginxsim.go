// Package nginxsim reproduces the §6.4.2 experiment: an NGINX-like web
// server whose OpenSSL-like crypto (and session keys) run inside an
// in-process protection domain. Per the ERIM methodology the paper
// follows, the server crosses into the crypto domain for every OpenSSL
// call — a handful of session-key operations per request plus bulk
// encryption per TLS record — so small responses are dominated by
// transition cost and large responses amortize it: the shape of Fig 5.
//
// Three protections are compared: none (unprotected session keys), an
// MPK/ERIM-style domain (two wrpkru per crossing), and HFI's native
// sandbox (serialized hfi_enter/hfi_exit plus the region-metadata moves,
// which is why HFI's overhead sits slightly above MPK's in Fig 5).
package nginxsim

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/mpk"
	"hfi/internal/sandbox"
)

// Protection selects the isolation applied to the crypto domain.
type Protection uint8

// The Fig 5 configurations.
const (
	ProtNone Protection = iota
	ProtMPK
	ProtHFI
)

var protNames = [...]string{"none", "mpk", "hfi"}

func (p Protection) String() string { return protNames[p] }

// RecordSize is the TLS record granularity.
const RecordSize = 16 << 10

// RequestOverheadNs is the per-request server work outside crypto
// (accept, parse, headers, response syscalls).
const RequestOverheadNs = 9_000

// SendPerByteNs is the per-byte socket-path cost of the response.
const SendPerByteNs = 0.05

// KeyOpsPerRequest is the number of session-key touches per request
// outside bulk encryption (handshake resumption, MAC key derivation, IV
// setup — the small OpenSSL calls ERIM-style systems interpose on). Each
// one is a domain-crossing pair.
const KeyOpsPerRequest = 16

// Guest argument block offsets (relative to the crypto domain's data
// base): the caller writes the operation selector and record length.
const (
	argOp  = 0 // 0 = key operation, 1 = bulk encrypt
	argLen = 8
	bufOff = 4096
)

// Server is the simulated NGINX worker.
type Server struct {
	RT   *sandbox.Runtime
	prot Protection
	ns   *sandbox.NativeSandbox
	prog *isa.Program
	pku  *mpk.PKU
	key  mpk.Key
	data uint64 // crypto-domain data block (args + key + record buffer)

	// Crossings counts domain-crossing pairs performed.
	Crossings uint64
}

// New builds a server with the given protection for its crypto domain.
func New(prot Protection) (*Server, error) {
	rt := sandbox.NewRuntime()
	s := &Server{RT: rt, prot: prot}

	gen := func(codeBase, dataBase uint64) *isa.Program {
		s.data = dataBase
		return buildCrypto(codeBase, dataBase)
	}

	if prot == ProtHFI {
		ns, err := rt.NewNative(2048, 1<<20, true /* serialized */, gen)
		if err != nil {
			return nil, err
		}
		s.ns = ns
		s.prog = ns.Prog
		return s, nil
	}

	// Unprotected / MPK: the same unmodified binary, loaded directly.
	m := rt.M
	codeBase, err := m.AS.MapAligned(4096, 4096, kernel.ProtRead|kernel.ProtExec)
	if err != nil {
		return nil, err
	}
	dataBase, err := m.AS.MapAligned(1<<20, 1<<20, kernel.ProtRead|kernel.ProtWrite)
	if err != nil {
		return nil, err
	}
	s.prog = gen(codeBase, dataBase)
	if err := m.LoadPrelinked(s.prog); err != nil {
		return nil, err
	}

	if prot == ProtMPK {
		s.pku = mpk.New(m.Kern.Clock)
		key, err := s.pku.PkeyAlloc()
		if err != nil {
			return nil, err
		}
		s.key = key
		s.pku.PkeyMprotect(m.Kern.Costs, dataBase, 1<<20, key)
		s.pku.ExitDomain(key)
	}
	return s, nil
}

// buildCrypto assembles the OpenSSL stand-in, an unmodified native binary
// (plain loads/stores, no instrumentation, arguments via memory since a
// native springboard clears registers, §3.3.1). It dispatches on the op
// selector: a short session-key operation, or a ChaCha-like bulk
// encryption of the record buffer.
func buildCrypto(codeBase, dataBase uint64) *isa.Program {
	b := isa.NewBuilder(codeBase)
	b.Label("entry")
	b.MovImm(isa.R10, int64(dataBase))
	b.Load(8, isa.R0, isa.R10, isa.RegNone, 1, argOp)
	b.BrImm(isa.CondEQ, isa.R0, 1, "encrypt")

	// Key operation: mix the session key with a nonce (HKDF flavour).
	b.Load(8, isa.R2, isa.R10, isa.RegNone, 1, 64) // session key
	b.Load(8, isa.R3, isa.R10, isa.RegNone, 1, 72) // nonce counter
	for i := 0; i < 6; i++ {
		b.ALU32(isa.OpAdd, isa.R2, isa.R2, isa.R3)
		b.ALU32Imm(isa.OpShl, isa.R4, isa.R2, 13)
		b.ALU32(isa.OpXor, isa.R2, isa.R2, isa.R4)
		b.ALU32Imm(isa.OpShr, isa.R4, isa.R2, 7)
		b.ALU32(isa.OpXor, isa.R2, isa.R2, isa.R4)
	}
	b.AddImm(isa.R3, isa.R3, 1)
	b.Store(8, isa.R10, isa.RegNone, 1, 72, isa.R3)
	b.Store(8, isa.R10, isa.RegNone, 1, 80, isa.R2) // derived key
	b.Halt()

	// Bulk encryption: ChaCha-like ARX over the record buffer.
	b.Label("encrypt")
	b.Load(8, isa.R1, isa.R10, isa.RegNone, 1, argLen)
	b.MovImm(isa.R0, int64(dataBase+bufOff))
	b.MovImm(isa.R2, 0x61707865)
	b.MovImm(isa.R3, 0x3320646e)
	b.MovImm(isa.R4, 0x79622d32)
	b.MovImm(isa.R5, 0x6b206574)
	b.MovImm(isa.R7, 0)
	b.Label("block")
	b.Br(isa.CondGEU, isa.R7, isa.R1, "done")
	for i := 0; i < 2; i++ {
		b.ALU32(isa.OpAdd, isa.R2, isa.R2, isa.R3)
		b.ALU32(isa.OpXor, isa.R5, isa.R5, isa.R2)
		b.ALU32Imm(isa.OpShl, isa.R8, isa.R5, 16)
		b.ALU32Imm(isa.OpShr, isa.R5, isa.R5, 16)
		b.ALU32(isa.OpOr, isa.R5, isa.R5, isa.R8)
		b.ALU32(isa.OpAdd, isa.R4, isa.R4, isa.R5)
		b.ALU32(isa.OpXor, isa.R3, isa.R3, isa.R4)
		b.ALU32Imm(isa.OpShl, isa.R8, isa.R3, 12)
		b.ALU32Imm(isa.OpShr, isa.R3, isa.R3, 20)
		b.ALU32(isa.OpOr, isa.R3, isa.R3, isa.R8)
	}
	b.ShlImm(isa.R9, isa.R2, 32)
	b.Or(isa.R9, isa.R9, isa.R3)
	b.Load(8, isa.R8, isa.R0, isa.R7, 1, 0)
	b.Xor(isa.R8, isa.R8, isa.R9)
	b.Store(8, isa.R0, isa.R7, 1, 0, isa.R8)
	b.ShlImm(isa.R9, isa.R4, 32)
	b.Or(isa.R9, isa.R9, isa.R5)
	b.Load(8, isa.R8, isa.R0, isa.R7, 1, 8)
	b.Xor(isa.R8, isa.R8, isa.R9)
	b.Store(8, isa.R0, isa.R7, 1, 8, isa.R8)
	b.AddImm(isa.R7, isa.R7, 16)
	b.Jmp("block")
	b.Label("done")
	b.Halt()
	return b.Build()
}

// cross performs one crypto-domain call: enter the domain under the
// configured protection, run the guest routine, leave. op selects the
// guest routine; n is the record length for bulk encryption.
func (s *Server) cross(eng cpu.Engine, op, n uint64) error {
	m := s.RT.M
	s.Crossings++
	m.Mem().Write(s.data+argOp, 8, op)
	m.Mem().Write(s.data+argLen, 8, n)

	if s.prot == ProtMPK {
		s.pku.EnterDomain(s.key)
		defer s.pku.ExitDomain(s.key)
	}

	var res cpu.RunResult
	if s.prot == ProtHFI {
		res = s.ns.Run(eng, 0)
		// The library call completed with HFI still enabled (it is a
		// call, not a process exit); the trusted runtime leaves the
		// sandbox, paying the serialized exit.
		if m.HFI.Enabled {
			exit := m.HFI.Exit()
			if exit.Serialize {
				m.Kern.Clock.AdvanceCycles(hfi.SerializeCycles, kernel.CoreGHz)
			}
		}
	} else {
		m.PC = s.prog.Entry("entry")
		res = eng.Run(0)
	}
	if res.Reason != cpu.StopHalt && res.Reason != cpu.StopExit {
		return fmt.Errorf("nginxsim: crypto stop %v", res.Reason)
	}
	return nil
}

// ServeResult reports throughput for one file size.
type ServeResult struct {
	Prot       Protection
	FileBytes  uint64
	Requests   int
	Throughput float64 // requests per simulated second
}

// Serve runs n requests of fileBytes each and returns throughput from the
// simulated clock. Each request performs fixed server work, the
// session-key operations, and per-record MAC + bulk-encryption crossings.
func (s *Server) Serve(fileBytes uint64, n int) (ServeResult, error) {
	m := s.RT.M
	eng := cpu.NewInterp(m)
	clock := m.Kern.Clock
	start := clock.Now()
	for i := 0; i < n; i++ {
		clock.Advance(RequestOverheadNs + uint64(float64(fileBytes)*SendPerByteNs))
		for k := 0; k < KeyOpsPerRequest; k++ {
			if err := s.cross(eng, 0, 0); err != nil {
				return ServeResult{}, err
			}
		}
		records := int((fileBytes + RecordSize - 1) / RecordSize)
		if records == 0 {
			records = 1 // headers are encrypted even for empty bodies
		}
		for r := 0; r < records; r++ {
			chunk := fileBytes - uint64(r)*RecordSize
			if chunk > RecordSize {
				chunk = RecordSize
			}
			if chunk == 0 {
				chunk = 256 // header-only record
			}
			// MAC derivation + bulk encryption: two crossings per record.
			if err := s.cross(eng, 0, 0); err != nil {
				return ServeResult{}, err
			}
			if err := s.cross(eng, 1, chunk); err != nil {
				return ServeResult{}, err
			}
		}
	}
	elapsed := float64(clock.Now() - start)
	return ServeResult{
		Prot: s.prot, FileBytes: fileBytes, Requests: n,
		Throughput: float64(n) / (elapsed / 1e9),
	}, nil
}

// Interposed reports how many syscalls HFI interposed on (zero for the
// other protections).
func (s *Server) Interposed() uint64 {
	if s.ns == nil {
		return 0
	}
	return s.ns.Interposed
}

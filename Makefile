# Convenience targets; scripts/verify.sh is the canonical gate.

.PHONY: build test race vet verify verifier bench serve

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./...

# Full verification gate: build + vet + race-detected test suite + the
# static-verifier corpus sweep and mutation bench.
verify:
	sh scripts/verify.sh

# Static verifier only: corpus sweep + full mutation bench (~2k mutants).
verifier:
	go run ./cmd/hfiverify
	go run ./cmd/hfiverify -mutate -full

bench:
	go test -bench=. -benchmem

# Throughput-vs-workers scaling demo with checksum verification.
serve:
	go run ./cmd/hfiserve -requests 200 -verify

package cpu

import (
	"testing"

	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// mapRW maps a scratch data region for tests.
func mapRW(t *testing.T, m *Machine, base, size uint64) {
	t.Helper()
	if err := m.AS.MapFixed(base, size, kernel.ProtRead|kernel.ProtWrite); err != nil {
		t.Fatal(err)
	}
}

// TestCoreMispredictRecovery runs a data-dependent branch pattern the PHT
// cannot learn and checks architectural results stay exact.
func TestCoreMispredictRecovery(t *testing.T) {
	m := NewMachine()
	mapRW(t, m, 0x100000, 0x10000)
	b := isa.NewBuilder(0x1000)
	// xorshift-driven unpredictable branches; count taken in R3.
	b.MovImm(isa.R1, 88172645463325252)
	b.MovImm(isa.R2, 0)
	b.MovImm(isa.R3, 0)
	b.Label("loop")
	b.ShlImm(isa.R4, isa.R1, 13)
	b.Xor(isa.R1, isa.R1, isa.R4)
	b.ShrImm(isa.R4, isa.R1, 7)
	b.Xor(isa.R1, isa.R1, isa.R4)
	b.AndImm(isa.R4, isa.R1, 1)
	b.BrImm(isa.CondEQ, isa.R4, 0, "skip")
	b.AddImm(isa.R3, isa.R3, 1)
	b.Label("skip")
	b.AddImm(isa.R2, isa.R2, 1)
	b.BrImm(isa.CondLT, isa.R2, 2000, "loop")
	b.Halt()
	p := b.Build()

	m.MustLoadProgram(p)
	m.PC = 0x1000
	c := NewCore(m)
	if res := c.Run(0); res.Reason != StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	taken := m.Regs[isa.R3]

	// Reference on the interpreter.
	m2 := NewMachine()
	mapRW(t, m2, 0x100000, 0x10000)
	m2.MustLoadProgram(p)
	m2.PC = 0x1000
	NewInterp(m2).Run(0)
	if taken != m2.Regs[isa.R3] {
		t.Fatalf("core %d taken vs interp %d", taken, m2.Regs[isa.R3])
	}
	if c.Squashed == 0 {
		t.Fatal("unpredictable branches squashed nothing")
	}
}

// TestCoreStoreForwarding checks exact-match store-to-load forwarding and
// the conservative stall on partial overlap.
func TestCoreStoreForwarding(t *testing.T) {
	m := NewMachine()
	mapRW(t, m, 0x100000, 0x1000)
	b := isa.NewBuilder(0x1000)
	b.MovImm(isa.R1, 0x100000)
	b.MovImm(isa.R2, 0x1122334455667788)
	b.Store(8, isa.R1, isa.RegNone, 1, 0, isa.R2) // full store
	b.Load(8, isa.R3, isa.R1, isa.RegNone, 1, 0)  // exact match: forward
	b.Load(4, isa.R4, isa.R1, isa.RegNone, 1, 0)  // partial: wait for commit
	b.Load(2, isa.R5, isa.R1, isa.RegNone, 1, 4)  // offset partial
	b.Halt()
	m.MustLoadProgram(b.Build())
	m.PC = 0x1000
	if res := NewCore(m).Run(0); res.Reason != StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	if m.Regs[isa.R3] != 0x1122334455667788 {
		t.Fatalf("forwarded load = %#x", m.Regs[isa.R3])
	}
	if m.Regs[isa.R4] != 0x55667788 {
		t.Fatalf("partial load = %#x", m.Regs[isa.R4])
	}
	if m.Regs[isa.R5] != 0x3344 {
		t.Fatalf("offset partial load = %#x", m.Regs[isa.R5])
	}
}

// TestCoreWrongPathLoadsTouchCache is the microarchitectural property the
// Spectre PoCs depend on: a load on a mispredicted path fills the cache
// even though it never commits.
func TestCoreWrongPathLoadsTouchCache(t *testing.T) {
	m := NewMachine()
	mapRW(t, m, 0x100000, 0x10000)
	const probe = 0x108000
	b := isa.NewBuilder(0x1000)
	b.MovImm(isa.R1, 0x100000)
	b.Load(8, isa.R2, isa.R1, isa.RegNone, 1, 0) // slow operand (cold)
	b.BrImm(isa.CondEQ, isa.R2, 0, "out")        // resolves late; trained not-taken? cold PHT says not-taken
	b.MovImm(isa.R3, probe)
	b.Load(8, isa.R4, isa.R3, isa.RegNone, 1, 0) // wrong-path probe touch
	b.Label("out")
	b.Halt()
	m.MustLoadProgram(b.Build())

	// Memory at 0x100000 is zero, so the branch IS taken; the PHT
	// initializes weakly-not-taken, so the wrong path (fall-through)
	// executes while the zero load is in flight.
	m.PC = 0x1000
	c := NewCore(m)
	if res := c.Run(0); res.Reason != StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	if !m.Hier.Probe(probe) {
		t.Fatal("wrong-path load left no cache trace")
	}
	if c.SpecLoads == 0 {
		t.Fatal("no squashed loads recorded")
	}
}

// TestCoreSerializedEnterClosesWindow: with is-serialized set, a
// speculative load after hfi_enter cannot issue before the enter commits
// — there must be no wrong-path cache fill from inside the sandbox setup.
func TestCoreSerializedEnterBlocksSpeculation(t *testing.T) {
	run := func(serialized bool) bool {
		m := NewMachine()
		mapRW(t, m, 0x100000, 0x10000)
		const probe = 0x109040
		// Region table: code over the program, data over the scratch
		// block (including the probe), so the speculative sandbox can
		// execute and touch the probe if the pipeline lets it.
		table := uint64(0x100300)
		entries := []struct {
			num  int
			body [hfi.RegionTSize]byte
		}{
			{hfi.RegionCodeBase, hfi.EncodeImplicitRegion(hfi.ImplicitRegion{
				BasePrefix: 0x1000, LSBMask: 0xfff, Exec: true})},
			{hfi.RegionDataBase, hfi.EncodeImplicitRegion(hfi.ImplicitRegion{
				BasePrefix: 0x100000, LSBMask: 0xffff, Read: true, Write: true})},
		}
		for i, e := range entries {
			off := table + uint64(i)*hfi.RegionEntrySize
			m.Mem().Write(off, 8, uint64(e.num))
			m.Mem().WriteBytes(off+8, e.body[:])
		}
		cfg := hfi.Config{Hybrid: true, Serialized: serialized, RegionsPtr: table, RegionCount: 2}
		sb := hfi.EncodeSandboxT(cfg)
		m.Mem().WriteBytes(0x100200, sb[:])

		b := isa.NewBuilder(0x1000)
		b.MovImm(isa.R1, 0x100000)
		b.Load(8, isa.R2, isa.R1, isa.RegNone, 1, 0) // slow zero
		b.BrImm(isa.CondEQ, isa.R2, 0, "out")        // actually taken, predicted fall-through
		b.MovImm(isa.R6, 0x100200)
		b.HfiEnter(isa.R6) // wrong-path enter
		b.MovImm(isa.R3, probe)
		b.Load(8, isa.R4, isa.R3, isa.RegNone, 1, 0) // wrong-path probe
		b.Label("out")
		b.Halt()
		m.MustLoadProgram(b.Build())
		m.PC = 0x1000
		c := NewCore(m)
		if res := c.Run(0); res.Reason != StopHalt {
			t.Fatalf("stop = %v", res.Reason)
		}
		if m.HFI.Enabled {
			t.Fatal("wrong-path enter survived architecturally")
		}
		return m.Hier.Probe(probe)
	}
	if !run(false) {
		t.Fatal("unserialized enter should leave the speculation window open")
	}
	if run(true) {
		t.Fatal("serialized enter let a younger load issue speculatively")
	}
}

// TestEnginesW32Semantics checks i32 wraparound on both engines.
func TestEnginesW32Semantics(t *testing.T) {
	build := func() *isa.Program {
		b := isa.NewBuilder(0x1000)
		b.MovImm(isa.R1, 0xffffffff)
		b.ALU32Imm(isa.OpAdd, isa.R2, isa.R1, 1)   // wraps to 0
		b.ALU32(isa.OpMul, isa.R3, isa.R1, isa.R1) // (2^32-1)^2 mod 2^32 = 1
		b.AddImm(isa.R4, isa.R1, 1)                // 64-bit: 0x100000000
		b.Halt()
		return b.Build()
	}
	for _, engName := range []string{"interp", "core"} {
		m := NewMachine()
		m.MustLoadProgram(build())
		m.PC = 0x1000
		var eng Engine
		if engName == "interp" {
			eng = NewInterp(m)
		} else {
			eng = NewCore(m)
		}
		if res := eng.Run(0); res.Reason != StopHalt {
			t.Fatalf("%s: stop = %v", engName, res.Reason)
		}
		if m.Regs[isa.R2] != 0 || m.Regs[isa.R3] != 1 || m.Regs[isa.R4] != 0x100000000 {
			t.Fatalf("%s: W32 results %#x %#x %#x", engName, m.Regs[isa.R2], m.Regs[isa.R3], m.Regs[isa.R4])
		}
	}
}

// TestGuestXsaveRestore exercises the guest-visible xsave/xrstor
// instructions: save HFI state, clobber it, restore, and verify.
func TestGuestXsaveRestore(t *testing.T) {
	m := NewMachine()
	mapRW(t, m, 0x100000, 0x10000)
	if f := m.HFI.SetDataRegion(0, hfi.ImplicitRegion{BasePrefix: 0x100000, LSBMask: 0xffff, Read: true, Write: true}); f != nil {
		t.Fatal(f)
	}

	b := isa.NewBuilder(0x1000)
	b.MovImm(isa.R1, 0x102000)
	b.Xsave(isa.R1)
	b.HfiClearAll()
	b.Xrstor(isa.R1)
	b.Halt()
	m.MustLoadProgram(b.Build())
	m.PC = 0x1000
	if res := NewInterp(m).Run(0); res.Reason != StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	if !m.HFI.Bank.Data[0].Valid || m.HFI.Bank.Data[0].BasePrefix != 0x100000 {
		t.Fatal("xrstor did not restore the region")
	}
}

// TestNativeXrstorTraps: a native sandbox restoring HFI state would break
// isolation; HFI traps it (§3.3.3).
func TestNativeXrstorTraps(t *testing.T) {
	for _, engName := range []string{"interp", "core"} {
		m := NewMachine()
		mapRW(t, m, 0x100000, 0x10000)
		b := isa.NewBuilder(0x1000)
		b.MovImm(isa.R1, 0x102000)
		b.Xrstor(isa.R1)
		b.Halt()
		p := b.Build()
		m.MustLoadProgram(p)
		if f := m.HFI.SetCodeRegion(0, hfi.ImplicitRegion{BasePrefix: 0x1000, LSBMask: 0xfff, Exec: true}); f != nil {
			t.Fatal(f)
		}
		if f := m.HFI.SetDataRegion(0, hfi.ImplicitRegion{BasePrefix: 0x100000, LSBMask: 0xffff, Read: true, Write: true}); f != nil {
			t.Fatal(f)
		}
		if _, f := m.HFI.Enter(hfi.Config{Hybrid: false}); f != nil {
			t.Fatal(f)
		}
		m.PC = 0x1000
		var eng Engine
		if engName == "interp" {
			eng = NewInterp(m)
		} else {
			eng = NewCore(m)
		}
		res := eng.Run(0)
		if res.Reason != StopFault || res.Fault == nil || res.Fault.Reason != hfi.FaultPrivileged {
			t.Fatalf("%s: res=%+v, want privileged fault", engName, res)
		}
	}
}

// TestGuestReenter: hfi_exit followed by hfi_reenter restores the sandbox.
func TestGuestReenter(t *testing.T) {
	m := NewMachine()
	mapRW(t, m, 0x100000, 0x10000)
	b := isa.NewBuilder(0x1000)
	b.HfiExit()
	b.HfiReenter()
	b.Halt()
	m.MustLoadProgram(b.Build())
	if f := m.HFI.SetCodeRegion(0, hfi.ImplicitRegion{BasePrefix: 0x1000, LSBMask: 0xfff, Exec: true}); f != nil {
		t.Fatal(f)
	}
	if _, f := m.HFI.Enter(hfi.Config{Hybrid: true}); f != nil {
		t.Fatal(f)
	}
	m.PC = 0x1000
	if res := NewInterp(m).Run(0); res.Reason != StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	if !m.HFI.Enabled {
		t.Fatal("reenter did not re-enable HFI")
	}
	if m.HFI.Enters != 2 || m.HFI.Exits != 1 {
		t.Fatalf("enters/exits = %d/%d", m.HFI.Enters, m.HFI.Exits)
	}
}

// TestDivZeroFaults on both engines.
func TestDivZeroFaults(t *testing.T) {
	for _, engName := range []string{"interp", "core"} {
		m := NewMachine()
		b := isa.NewBuilder(0x1000)
		b.MovImm(isa.R1, 7)
		b.MovImm(isa.R2, 0)
		b.Div(isa.R3, isa.R1, isa.R2)
		b.Halt()
		m.MustLoadProgram(b.Build())
		m.PC = 0x1000
		var eng Engine
		if engName == "interp" {
			eng = NewInterp(m)
		} else {
			eng = NewCore(m)
		}
		if res := eng.Run(0); res.Reason != StopFault {
			t.Fatalf("%s: stop = %v, want fault", engName, res.Reason)
		}
	}
}

// TestIndirectCallViaBTB checks indirect control flow on the core,
// including BTB training over repeated calls. The program is built twice
// with identical shape: the first pass discovers the function addresses,
// the second bakes them into the movi immediates.
func TestIndirectCallViaBTB(t *testing.T) {
	build := func(fnA, fnB int64) *isa.Program {
		b := isa.NewBuilder(0x1000)
		b.MovImm(isa.SP, 0x201000)
		b.MovImm(isa.R1, 0)
		b.MovImm(isa.R2, 0)
		b.Label("loop")
		b.AndImm(isa.R4, isa.R1, 1)
		b.BrImm(isa.CondEQ, isa.R4, 0, "even")
		b.MovImm(isa.R6, fnA)
		b.Jmp("docall")
		b.Label("even")
		b.MovImm(isa.R6, fnB)
		b.Label("docall")
		b.CallInd(isa.R6)
		b.AddImm(isa.R1, isa.R1, 1)
		b.BrImm(isa.CondLT, isa.R1, 100, "loop")
		b.Halt()
		b.Label("fnA")
		b.AddImm(isa.R2, isa.R2, 3)
		b.Ret()
		b.Label("fnB")
		b.AddImm(isa.R2, isa.R2, 5)
		b.Ret()
		return b.Build()
	}
	pass1 := build(0, 0)
	prog := build(int64(pass1.Entry("fnA")), int64(pass1.Entry("fnB")))

	m := NewMachine()
	mapRW(t, m, 0x200000, 0x1000) // stack
	m.MustLoadProgram(prog)
	m.PC = 0x1000
	c := NewCore(m)
	if res := c.Run(0); res.Reason != StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	if want := uint64(50*3 + 50*5); m.Regs[isa.R2] != want {
		t.Fatalf("R2 = %d, want %d", m.Regs[isa.R2], want)
	}
}

// TestRdtscMonotonic on the core.
func TestRdtscMonotonic(t *testing.T) {
	m := NewMachine()
	b := isa.NewBuilder(0x1000)
	b.Rdtsc(isa.R1)
	for i := 0; i < 20; i++ {
		b.Nop()
	}
	b.Rdtsc(isa.R2)
	b.Halt()
	m.MustLoadProgram(b.Build())
	m.PC = 0x1000
	if res := NewCore(m).Run(0); res.Reason != StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	if m.Regs[isa.R2] <= m.Regs[isa.R1] {
		t.Fatalf("rdtsc not monotonic: %d then %d", m.Regs[isa.R1], m.Regs[isa.R2])
	}
}

// TestSignalResume: a fault handler returning a resume PC continues
// execution there on both engines.
func TestSignalResume(t *testing.T) {
	for _, engName := range []string{"interp", "core"} {
		m := NewMachine()
		b := isa.NewBuilder(0x1000)
		b.MovImm(isa.R1, 0xdead0000)
		b.Load(8, isa.R2, isa.R1, isa.RegNone, 1, 0) // page fault
		b.Halt()
		b.Label("recover")
		b.MovImm(isa.R3, 99)
		b.Halt()
		p := b.Build()
		m.MustLoadProgram(p)
		m.Kern.Sigsegv = func(info kernel.SigInfo) uint64 {
			return p.Entry("recover")
		}
		m.PC = 0x1000
		var eng Engine
		if engName == "interp" {
			eng = NewInterp(m)
		} else {
			eng = NewCore(m)
		}
		if res := eng.Run(0); res.Reason != StopHalt {
			t.Fatalf("%s: stop = %v", engName, res.Reason)
		}
		if m.Regs[isa.R3] != 99 {
			t.Fatalf("%s: handler resume did not run", engName)
		}
	}
}

// TestCoreSpeculativeExitAttack is the §3.4 attack that the is-serialized
// flag on hfi_exit exists to stop: sandboxed code speculatively executes
// hfi_exit on a mispredicted path, disabling HFI, and then speculatively
// loads host memory outside every region. Unserialized, the load fills the
// cache (a leak); serialized, the exit cannot execute before the branch
// resolves, so the wrong path never runs with HFI off.
func TestCoreSpeculativeExitAttack(t *testing.T) {
	run := func(serialized bool) bool {
		m := NewMachine()
		mapRW(t, m, 0x100000, 0x10000) // sandbox data
		mapRW(t, m, 0x300000, 0x1000)  // host memory holding the secret
		const secret = 0x300040

		b := isa.NewBuilder(0x1000)
		b.MovImm(isa.R1, 0x100000)
		b.Load(8, isa.R2, isa.R1, isa.RegNone, 1, 0) // slow zero (cold line)
		b.BrImm(isa.CondEQ, isa.R2, 0, "out")        // taken; predicted fall-through
		b.HfiExit()                                  // wrong path: speculatively leave the sandbox
		b.MovImm(isa.R3, secret)
		b.Load(8, isa.R4, isa.R3, isa.RegNone, 1, 0) // unchecked host read
		b.Label("out")
		b.Halt()
		m.MustLoadProgram(b.Build())

		if f := m.HFI.SetCodeRegion(0, hfi.ImplicitRegion{BasePrefix: 0x1000, LSBMask: 0xfff, Exec: true}); f != nil {
			t.Fatal(f)
		}
		if f := m.HFI.SetDataRegion(0, hfi.ImplicitRegion{BasePrefix: 0x100000, LSBMask: 0xffff, Read: true, Write: true}); f != nil {
			t.Fatal(f)
		}
		if _, f := m.HFI.Enter(hfi.Config{Hybrid: true, Serialized: serialized}); f != nil {
			t.Fatal(f)
		}
		m.PC = 0x1000
		c := NewCore(m)
		if res := c.Run(0); res.Reason != StopHalt {
			t.Fatalf("stop = %v", res.Reason)
		}
		if !m.HFI.Enabled {
			t.Fatal("speculative exit became architectural")
		}
		return m.Hier.Probe(secret)
	}
	if !run(false) {
		t.Fatal("unserialized hfi_exit should be speculatively exploitable (the §3.4 premise)")
	}
	if run(true) {
		t.Fatal("serialized hfi_exit leaked host memory")
	}
}

package experiments

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/wasm"
)

// tinyModule does a handful of instructions — a transition-dominated
// invocation.
func tinyModule() *wasm.Module {
	m := wasm.NewModule("tiny", 1, 1)
	f := m.Func("run", 0)
	v := f.NewReg()
	f.MovImm(v, 7)
	f.Store(4, v, 0, v)
	f.Load(4, v, v, 0)
	f.Ret(v)
	return m
}

// RunAblationSwitchOnExit compares the two Spectre-safe transition designs
// of §3.4/§4.5 on the timing core: serializing every hfi_enter/hfi_exit,
// versus the switch-on-exit extension where the trusted runtime serializes
// once and child transitions swap register banks without draining.
func RunAblationSwitchOnExit(invocations int) (*stats.Table, error) {
	if invocations <= 0 {
		invocations = 300
	}

	run := func(switchOnExit bool) (float64, error) {
		rt := sandbox.NewRuntime()
		rt.Serialized = !switchOnExit
		rt.SwitchOnExit = switchOnExit
		inst, err := rt.Instantiate(tinyModule(), sfi.HFI, wasm.Options{})
		if err != nil {
			return 0, err
		}
		m := rt.M
		if switchOnExit {
			// The trusted runtime runs inside its own hybrid serialized
			// sandbox (§3.4): one serialized enter up front, after which
			// child enters/exits need no serialization.
			if f := m.HFI.SetCodeRegion(0, hfi.ImplicitRegion{
				BasePrefix: inst.CodeBase, LSBMask: inst.CodeSize - 1, Exec: true,
			}); f != nil {
				return 0, fmt.Errorf("runtime code region: %v", f)
			}
			if f := m.HFI.SetDataRegion(0, hfi.ImplicitRegion{
				BasePrefix: inst.AuxBase, LSBMask: inst.AuxSize - 1, Read: true, Write: true,
			}); f != nil {
				return 0, fmt.Errorf("runtime data region: %v", f)
			}
			if _, f := m.HFI.Enter(hfi.Config{Hybrid: true, Serialized: true}); f != nil {
				return 0, fmt.Errorf("runtime enter: %v", f)
			}
		}
		eng := cpu.NewCore(m)
		clock := m.Kern.Clock
		t0 := clock.Now()
		for i := 0; i < invocations; i++ {
			res, _ := inst.Invoke(eng, 0)
			if res.Reason != cpu.StopHalt {
				return 0, fmt.Errorf("invocation %d: stop %v", i, res.Reason)
			}
		}
		return (float64(clock.Now()) - float64(t0)) / float64(invocations), nil
	}

	serialized, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("serialized variant: %w", err)
	}
	soe, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("switch-on-exit variant: %w", err)
	}
	tb := &stats.Table{
		Title:   "Ablation: serialize-every-transition vs switch-on-exit (§4.5)",
		Columns: []string{"design", "per invocation", "speedup"},
	}
	tb.AddRow("serialized enter+exit", stats.Ns(serialized), "1.0x")
	tb.AddRow("switch-on-exit", stats.Ns(soe), fmt.Sprintf("%.2fx", serialized/soe))
	tb.AddNote("both designs are Spectre-safe; switch-on-exit removes the per-transition pipeline drains")
	return tb, nil
}

// RunAblationSchemes measures per-access enforcement cost on the timing
// core: a load/store-dense loop under each scheme, cycles per iteration.
// This isolates the §2/§3.2 mechanism comparison from macro effects.
func RunAblationSchemes() (*stats.Table, error) {
	build := func() *wasm.Module {
		m := wasm.NewModule("accessloop", 1, 1)
		f := m.Func("run", 0)
		i, v := f.NewReg(), f.NewReg()
		f.MovImm(i, 0)
		f.Label("loop")
		f.And32Imm(v, i, 0xfff)
		f.Store(4, v, 0, v)
		f.Load(4, v, v, 0)
		f.And32Imm(v, v, 0xfff) // loaded values re-enter as indexes: keep them in range
		f.Load(4, v, v, 4)
		f.And32Imm(v, v, 0xfff)
		f.Store(4, v, 8, v)
		f.Add32Imm(i, i, 1)
		f.BrImm(isa.CondLT, i, 20000, "loop")
		f.Ret(v)
		return m
	}

	tb := &stats.Table{
		Title:   "Ablation: per-access enforcement cost (4 memory ops / iteration, timing core)",
		Columns: []string{"scheme", "cycles/iter", "extra instrs/access", "reserved regs"},
	}
	var base float64
	for _, scheme := range []sfi.Scheme{sfi.None, sfi.GuardPages, sfi.BoundsCheck, sfi.Masking, sfi.HFI} {
		meas, err := MeasureModule(build(), scheme, wasm.Options{}, EngCore)
		if err != nil {
			return nil, err
		}
		cyc := float64(meas.Cycles) / 20000
		if scheme == sfi.None {
			base = cyc
		}
		tb.AddRow(scheme.String(),
			fmt.Sprintf("%.2f (%.2fx)", cyc, cyc/base),
			fmt.Sprintf("%d", scheme.ExtraInstrsPerAccess()),
			fmt.Sprintf("%d", len(scheme.ReservedRegs())))
	}
	tb.AddNote("HFI's hmov adds no instructions and reserves no registers; bounds checks pay both")
	return tb, nil
}

package hostcall

import (
	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// World is the host-side resource universe shared by every sandbox a
// host process serves: the determinism seed (all clocks and randomness
// derive from it, so a run is exactly reproducible), the shared KV
// store, and the per-tenant filesystem quota. One World per host.
type World struct {
	Seed uint64
	KV   *KV
	FS   FSQuota
}

// NewWorld returns a world with the default per-tenant KV and FS quotas.
func NewWorld(seed uint64) *World {
	return &World{Seed: seed, KV: NewKV(DefaultKVQuota()), FS: DefaultFSQuota()}
}

// FSQuota bounds one tenant's simulated filesystem and stream footprint.
// Files persist across requests as session state, so without a quota a
// tenant could loop fd_open/fd_write and grow host memory without bound.
// Zero fields mean unlimited (tests); NewWorld installs the defaults.
type FSQuota struct {
	MaxFiles       int    // live files per tenant
	MaxFDs         int    // open descriptors per tenant
	MaxBytes       uint64 // sum of name+content bytes across the tenant's files
	MaxStdoutBytes uint64 // response bytes buffered per request
}

// DefaultFSQuota mirrors DefaultKVQuota: roomy enough for the workloads,
// a hard wall for a runaway tenant.
func DefaultFSQuota() FSQuota {
	return FSQuota{MaxFiles: 256, MaxFDs: 64, MaxBytes: 4 << 20, MaxStdoutBytes: 1 << 20}
}

// Fault is a chaos-injected hostcall failure mode (internal/chaos arms
// one per faulted request).
type Fault uint8

// Hostcall fault modes.
const (
	FaultNone  Fault = iota
	FaultErr         // the request's first resource call fails with EIO
	FaultQuota       // every kv_put this request is refused with EDQUOT
	FaultSlow        // every hostcall pays SlowFaultNs extra
)

// SlowFaultNs is the extra simulated latency a FaultSlow hostcall pays —
// a host function blocking on a contended resource.
const SlowFaultNs = 50_000

// Env is one instance's hostcall environment: the per-tenant view of the
// world, the marshalling scratch state, and the counters the serving
// layer harvests. An Env lives as long as its tenant instance and is
// rearmed per request with BeginRequest.
type Env struct {
	world  *World
	tenant string

	// Bound execution context (Bind).
	m        *cpu.Machine
	heapBase uint64
	maxBytes uint64

	// Deterministic time and randomness, derived from the world seed and
	// the tenant name — per-tenant streams, reproducible across runs.
	wallBase uint64
	rng      uint64

	// Tenant-scoped filesystem and fd table. Files persist across
	// requests (session state); fds 0/1 stream the request/response.
	// fsBytes is the quota-charged footprint (name+content bytes).
	files    map[string][]byte
	fsBytes  uint64
	fds      map[int]*openFD
	nextFD   int
	stdin    []byte
	stdinOff int
	stdout   []byte

	// buf is the preallocated marshalling scratch: every guest<->host
	// copy bounces through it, so the fast path never allocates.
	buf [MaxIOBytes]byte

	// Counters harvested by the serving layer (stats.Recorder, /statsz).
	Calls        uint64
	BytesIn      uint64 // guest -> host marshalled bytes
	BytesOut     uint64 // host -> guest marshalled bytes
	QuotaRejects uint64

	fault    Fault
	errArmed bool // FaultErr: one-shot, trips on the first resource call
}

type openFD struct {
	name string
	off  int
	wr   bool
}

// splitmix64 advances a 64-bit state and returns a well-mixed output;
// the standard seeding PRNG, alloc-free and deterministic.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// NewEnv derives the tenant's environment from the world seed. Same
// seed, same tenant, same history => identical clock and random streams.
func (w *World) NewEnv(tenant string) *Env {
	st := w.Seed ^ fnv64(tenant)
	e := &Env{
		world:  w,
		tenant: tenant,
		files:  make(map[string][]byte),
		fds:    make(map[int]*openFD),
		nextFD: 3,
	}
	// A plausible, deterministic epoch: mid-2026 plus a seeded skew.
	e.wallBase = 1_780_000_000_000_000_000 + splitmix64(&st)%1_000_000_000_000
	e.rng = splitmix64(&st)
	return e
}

// Tenant returns the namespace this environment serves.
func (e *Env) Tenant() string { return e.tenant }

// AddFile seeds the tenant filesystem (workload fixtures). Seeded bytes
// count against the tenant's FS footprint so guest writes on top of
// fixtures stay bounded by the same quota.
func (e *Env) AddFile(name string, data []byte) {
	if old, ok := e.files[name]; ok {
		e.fsBytes -= uint64(len(name) + len(old))
	}
	e.files[name] = append([]byte(nil), data...)
	e.fsBytes += uint64(len(name) + len(data))
}

// Bind installs the environment as m's hostcall dispatcher for an
// instance whose linear memory starts at heapBase and spans maxBytes.
// Pointer arguments are offsets into that window; nothing else is ever
// touched.
func (e *Env) Bind(m *cpu.Machine, heapBase, maxBytes uint64) {
	e.m = m
	e.heapBase = heapBase
	e.maxBytes = maxBytes
	m.HostcallFn = e.dispatch
}

// BeginRequest arms the environment for one invocation: fd 0 streams
// body, fd 1 starts empty, and the previous request's one-shot fault
// state clears. Session state (files, KV, clocks, rng) persists.
func (e *Env) BeginRequest(body []byte) {
	e.stdin = body
	e.stdinOff = 0
	e.stdout = e.stdout[:0]
	e.fault = FaultNone
	e.errArmed = false
}

// InjectFault arms a chaos fault for the CURRENT request (call after
// BeginRequest, before Invoke).
func (e *Env) InjectFault(f Fault) {
	e.fault = f
	e.errArmed = f == FaultErr
}

// ResponseBody returns the bytes the guest wrote to fd 1 this request.
// The slice aliases Env state; callers copy before the next request.
func (e *Env) ResponseBody() []byte { return e.stdout }

// TakeCounters returns and clears the counters accumulated since the last
// harvest — the per-request delta the serving layer attributes to the
// tenant in its stats recorder.
func (e *Env) TakeCounters() (calls, bytesIn, bytesOut, quotaRejects uint64) {
	calls, bytesIn, bytesOut, quotaRejects = e.Calls, e.BytesIn, e.BytesOut, e.QuotaRejects
	e.Calls, e.BytesIn, e.BytesOut, e.QuotaRejects = 0, 0, 0, 0
	return
}

// ResetSession drops all per-session state (files, fds, streams) —
// the serving layer calls it when an instance is recycled or poisoned.
func (e *Env) ResetSession() {
	e.files = make(map[string][]byte)
	e.fsBytes = 0
	e.fds = make(map[int]*openFD)
	e.nextFD = 3
	e.stdin = nil
	e.stdinOff = 0
	e.stdout = nil
	e.fault = FaultNone
	e.errArmed = false
}

func negErrno(errno uint64) uint64 { return -errno & (1<<64 - 1) }

// resourceFault consumes a one-shot FaultErr arm.
func (e *Env) resourceFault() bool {
	if e.errArmed {
		e.errArmed = false
		return true
	}
	return false
}

// checkIn validates a guest buffer for reading and copies it into the
// scratch buffer, returning errno (0 = ok).
func (e *Env) checkIn(off, n uint64) ([]byte, uint64) {
	if n > MaxIOBytes {
		return nil, kernel.EINVAL
	}
	va, ok := e.guestRange(off, n)
	if !ok || !e.m.AS.CheckRange(va, n, kernel.ProtRead) {
		return nil, kernel.EFAULT
	}
	b := e.buf[:n]
	e.m.AS.Mem.ReadBytes(va, b)
	e.BytesIn += n
	return b, 0
}

// checkOut validates a guest buffer for writing, returning its host VA.
func (e *Env) checkOut(off, n uint64) (uint64, uint64) {
	if n > MaxIOBytes {
		return 0, kernel.EINVAL
	}
	va, ok := e.guestRange(off, n)
	if !ok || !e.m.AS.CheckRange(va, n, kernel.ProtWrite) {
		return 0, kernel.EFAULT
	}
	return va, 0
}

// guestRange maps a linear-memory (offset, len) to a host VA, refusing
// anything outside [0, maxBytes) — the runtime re-check behind the
// verifier's static proof (defense in depth: a compiler or verifier bug
// still cannot reach host memory).
func (e *Env) guestRange(off, n uint64) (uint64, bool) {
	if off > e.maxBytes || n > e.maxBytes-off {
		return 0, false
	}
	return e.heapBase + off, true
}

// writeOut copies host bytes to a validated guest VA.
func (e *Env) writeOut(va uint64, b []byte) {
	e.m.AS.Mem.WriteBytes(va, b)
	e.BytesOut += uint64(len(b))
}

// dispatch is the installed cpu.Machine.HostcallFn: decode R0, marshal,
// run the host function, charge the simulated clock. Alloc-free on the
// scalar and scratch-buffer paths.
func (e *Env) dispatch(regs *[isa.NumRegs]uint64) {
	e.Calls++
	num := regs[isa.R0]
	bytesBefore := e.BytesIn + e.BytesOut

	var ret uint64
	switch num {
	case NumAbiVersion:
		ret = Version
	case NumClockMonotonic:
		ret = e.m.Kern.Clock.Now()
	case NumClockWall:
		ret = e.wallBase + e.m.Kern.Clock.Now()
	case NumRandomGet:
		ret = e.randomGet(regs[isa.R1], regs[isa.R2])
	case NumFdOpen:
		ret = e.fdOpen(regs[isa.R1], regs[isa.R2], regs[isa.R3])
	case NumFdClose:
		ret = e.fdClose(regs[isa.R1])
	case NumFdRead:
		ret = e.fdRead(regs[isa.R1], regs[isa.R2], regs[isa.R3])
	case NumFdWrite:
		ret = e.fdWrite(regs[isa.R1], regs[isa.R2], regs[isa.R3])
	case NumKvGet:
		ret = e.kvGet(regs[isa.R1], regs[isa.R2], regs[isa.R3], regs[isa.R4])
	case NumKvPut:
		ret = e.kvPut(regs[isa.R1], regs[isa.R2], regs[isa.R3], regs[isa.R4])
	case NumKvDelete:
		ret = e.kvDelete(regs[isa.R1], regs[isa.R2])
	default:
		// Unreachable through verified code (the gate proof bounds R0);
		// reachable in mutation/chaos harnesses, so fail closed.
		ret = negErrno(kernel.ENOSYS)
	}
	regs[isa.R0] = ret

	// Cost model: fixed dispatch plus per-KiB marshalling, on the kernel
	// clock (host-side work; the core-side transition cost is charged by
	// the engines at the hostcall instruction).
	costs := &e.m.Kern.Costs
	moved := e.BytesIn + e.BytesOut - bytesBefore
	ns := costs.HostcallBase + costs.HostcallCopyPerKiB*((moved+1023)/1024)
	if e.fault == FaultSlow {
		ns += SlowFaultNs
	}
	e.m.Kern.Clock.Advance(ns)
}

func (e *Env) randomGet(off, n uint64) uint64 {
	va, errno := e.checkOut(off, n)
	if errno != 0 {
		return negErrno(errno)
	}
	b := e.buf[:n]
	for i := 0; i < len(b); i += 8 {
		r := splitmix64(&e.rng)
		for j := 0; j < 8 && i+j < len(b); j++ {
			b[i+j] = byte(r >> (8 * j))
		}
	}
	e.writeOut(va, b)
	return 0
}

func (e *Env) fdOpen(nameOff, nameLen, flags uint64) uint64 {
	if e.resourceFault() {
		return negErrno(kernel.EIO)
	}
	name, errno := e.checkIn(nameOff, nameLen)
	if errno != 0 {
		return negErrno(errno)
	}
	q := e.world.FS
	if q.MaxFDs > 0 && len(e.fds) >= q.MaxFDs {
		e.QuotaRejects++
		return negErrno(kernel.EDQUOT)
	}
	wr := flags&OpenCreate != 0
	if wr {
		if old, exists := e.files[string(name)]; exists {
			e.fsBytes -= uint64(len(old)) // truncation frees content bytes
		} else {
			if q.MaxFiles > 0 && len(e.files) >= q.MaxFiles {
				e.QuotaRejects++
				return negErrno(kernel.EDQUOT)
			}
			if q.MaxBytes > 0 && e.fsBytes+nameLen > q.MaxBytes {
				e.QuotaRejects++
				return negErrno(kernel.EDQUOT)
			}
			e.fsBytes += nameLen
		}
		e.files[string(name)] = nil
	} else if _, ok := e.files[string(name)]; !ok {
		return negErrno(kernel.ENOENT)
	}
	fd := e.nextFD
	e.nextFD++
	e.fds[fd] = &openFD{name: string(name), wr: wr}
	return uint64(fd)
}

func (e *Env) fdClose(fd uint64) uint64 {
	if _, ok := e.fds[int(fd)]; !ok {
		return negErrno(kernel.EBADF)
	}
	delete(e.fds, int(fd))
	return 0
}

func (e *Env) fdRead(fd, off, capacity uint64) uint64 {
	if e.resourceFault() {
		return negErrno(kernel.EIO)
	}
	var src []byte
	var at *int
	switch fd {
	case FdStdin:
		src, at = e.stdin, &e.stdinOff
	case FdStdout:
		return negErrno(kernel.EBADF)
	default:
		f, ok := e.fds[int(fd)]
		if !ok {
			return negErrno(kernel.EBADF)
		}
		src, at = e.files[f.name], &f.off
	}
	n := capacity
	if n > MaxIOBytes {
		n = MaxIOBytes
	}
	// A file can shrink under a live fd (fd_open with OpenCreate
	// truncates in place); clamp the stale offset before computing the
	// remainder so the unsigned subtraction cannot underflow.
	if *at > len(src) {
		*at = len(src)
	}
	if rem := uint64(len(src) - *at); n > rem {
		n = rem
	}
	va, errno := e.checkOut(off, n)
	if errno != 0 {
		return negErrno(errno)
	}
	e.writeOut(va, src[*at:*at+int(n)])
	*at += int(n)
	return n
}

func (e *Env) fdWrite(fd, off, n uint64) uint64 {
	if e.resourceFault() {
		return negErrno(kernel.EIO)
	}
	b, errno := e.checkIn(off, n)
	if errno != 0 {
		return negErrno(errno)
	}
	switch fd {
	case FdStdout:
		if q := e.world.FS; q.MaxStdoutBytes > 0 && uint64(len(e.stdout))+n > q.MaxStdoutBytes {
			e.QuotaRejects++
			return negErrno(kernel.EDQUOT)
		}
		e.stdout = append(e.stdout, b...)
	case FdStdin:
		return negErrno(kernel.EBADF)
	default:
		f, ok := e.fds[int(fd)]
		if !ok || !f.wr {
			return negErrno(kernel.EBADF)
		}
		if q := e.world.FS; q.MaxBytes > 0 && e.fsBytes+n > q.MaxBytes {
			e.QuotaRejects++
			return negErrno(kernel.EDQUOT)
		}
		e.files[f.name] = append(e.files[f.name], b...)
		e.fsBytes += n
	}
	return n
}

func (e *Env) kvGet(kOff, kLen, vOff, vCap uint64) uint64 {
	if e.resourceFault() {
		return negErrno(kernel.EIO)
	}
	key, errno := e.checkIn(kOff, kLen)
	if errno != 0 {
		return negErrno(errno)
	}
	if vCap > MaxIOBytes {
		return negErrno(kernel.EINVAL) // oversized lengths fail like every other marshalled arg
	}
	va, errno := e.checkOut(vOff, vCap)
	if errno != 0 {
		return negErrno(errno)
	}
	// The key occupies buf[:kLen]; copy the value after it so both fit
	// in the one scratch buffer without allocating.
	dst := e.buf[kLen:]
	if uint64(len(dst)) > vCap {
		dst = dst[:vCap]
	}
	n, kerr := e.world.KV.Get(e.tenant, key, dst)
	if kerr != 0 {
		return negErrno(kerr)
	}
	copied := n
	if copied > len(dst) {
		copied = len(dst)
	}
	e.writeOut(va, dst[:copied])
	// Full value length, not bytes copied: a return above vCap tells the
	// guest the read was truncated and how big a buffer to retry with.
	return uint64(n)
}

func (e *Env) kvPut(kOff, kLen, vOff, vLen uint64) uint64 {
	if e.resourceFault() {
		return negErrno(kernel.EIO)
	}
	if e.fault == FaultQuota {
		e.QuotaRejects++
		return negErrno(kernel.EDQUOT)
	}
	if kLen+vLen > MaxIOBytes {
		return negErrno(kernel.EINVAL)
	}
	key, errno := e.checkIn(kOff, kLen)
	if errno != 0 {
		return negErrno(errno)
	}
	// Marshal the value into the scratch space after the key.
	va, ok := e.guestRange(vOff, vLen)
	if !ok || !e.m.AS.CheckRange(va, vLen, kernel.ProtRead) {
		return negErrno(kernel.EFAULT)
	}
	val := e.buf[kLen : kLen+vLen]
	e.m.AS.Mem.ReadBytes(va, val)
	e.BytesIn += vLen
	if kerr := e.world.KV.Put(e.tenant, key, val); kerr != 0 {
		if kerr == kernel.EDQUOT {
			e.QuotaRejects++
		}
		return negErrno(kerr)
	}
	return 0
}

func (e *Env) kvDelete(kOff, kLen uint64) uint64 {
	if e.resourceFault() {
		return negErrno(kernel.EIO)
	}
	key, errno := e.checkIn(kOff, kLen)
	if errno != 0 {
		return negErrno(errno)
	}
	return negErrno(e.world.KV.Delete(e.tenant, key))
}

package sandbox

import (
	"math/rand"
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/sfi"
	"hfi/internal/wasm"
)

// The differential tests derive every math/rand seed from the fixed
// constants below, never from time or global rand state, so any reported
// failure ("seed 17 ...") reproduces bit-for-bit on any machine and Go
// release. Changing these constants changes which programs are generated;
// treat that as a corpus change, not a tweak.
const (
	// diffSeedStride/diffSeedBias map test index i to generator seed
	// i*stride+bias for TestDifferentialRandomPrograms.
	diffSeedStride = 7919
	diffSeedBias   = 17
	// swivelSeedStride/swivelSeedBias do the same for the Swivel
	// semantics test, deliberately disjoint from the differential corpus.
	swivelSeedStride = 104729
	swivelSeedBias   = 3
)

// randomModule generates a random but well-formed guest program: a loop
// over ALU operations and masked linear-memory accesses, deterministic for
// a given seed. It is the generator for the differential test below.
func randomModule(seed int64) *wasm.Module {
	rng := rand.New(rand.NewSource(seed))
	m := wasm.NewModule("fuzz", 1, 1)
	f := m.Func("run", 0)

	const nv = 6
	regs := make([]wasm.VReg, nv)
	for i := range regs {
		regs[i] = f.NewReg()
		f.MovImm(regs[i], int64(rng.Uint32()))
	}
	i := f.NewReg()
	f.MovImm(i, 0)
	f.Label("loop")

	pick := func() wasm.VReg { return regs[rng.Intn(nv)] }
	for op := 0; op < 12; op++ {
		a, b, d := pick(), pick(), pick()
		switch rng.Intn(9) {
		case 0:
			f.Add32(d, a, b)
		case 1:
			f.Sub32(d, a, b)
		case 2:
			f.Mul32(d, a, b)
		case 3:
			f.Xor32(d, a, b)
		case 4:
			f.And32(d, a, b)
		case 5:
			f.Shl32Imm(d, a, int64(rng.Intn(31)+1))
		case 6:
			f.Shr32Imm(d, a, int64(rng.Intn(31)+1))
		case 7:
			// Masked store then load: indexes stay inside the 64 KiB
			// memory regardless of the random values.
			f.And32Imm(d, a, 0xffc)
			f.Store(4, d, 0, b)
			f.Load(4, d, d, 0)
		case 8:
			f.Or32(d, a, b)
		}
	}
	f.Add32Imm(i, i, 1)
	f.BrImm(isa.CondLT, i, 50, "loop")

	acc := regs[0]
	for _, r := range regs[1:] {
		f.Xor32(acc, acc, r)
	}
	f.Ret(acc)
	return m
}

// TestDifferentialRandomPrograms is a differential test over the whole
// stack: for each random program, every (scheme, engine) combination must
// produce the same result. It has caught compiler, allocator, and pipeline
// bugs during development; keep the seed count meaningful.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		mod := randomModule(int64(seed)*diffSeedStride + diffSeedBias)
		var want uint64
		first := true
		for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.BoundsCheck, sfi.HFI} {
			for _, engName := range []string{"interp", "core"} {
				rt := NewRuntime()
				inst, err := rt.Instantiate(mod, scheme, wasm.Options{})
				if err != nil {
					t.Fatalf("seed %d %v: %v", seed, scheme, err)
				}
				var eng cpu.Engine
				if engName == "interp" {
					eng = cpu.NewInterp(rt.M)
				} else {
					eng = cpu.NewCore(rt.M)
				}
				res, got := inst.Invoke(eng, 50_000_000)
				if res.Reason != cpu.StopHalt {
					t.Fatalf("seed %d %v/%s: stop = %v", seed, scheme, engName, res.Reason)
				}
				if first {
					want = got
					first = false
				} else if got != want {
					t.Fatalf("seed %d %v/%s: result %#x, want %#x", seed, scheme, engName, got, want)
				}
			}
		}
	}
}

// TestDifferentialSwivelPreservesSemantics: the hardening pass must never
// change program results, only timing and size.
func TestDifferentialSwivelPreservesSemantics(t *testing.T) {
	for seed := 0; seed < 8; seed++ {
		mod := randomModule(int64(seed)*swivelSeedStride + swivelSeedBias)
		var want uint64
		for _, swiv := range []bool{false, true} {
			rt := NewRuntime()
			inst, err := rt.Instantiate(mod, sfi.GuardPages, wasm.Options{Swivel: swiv})
			if err != nil {
				t.Fatal(err)
			}
			res, got := inst.Invoke(cpu.NewInterp(rt.M), 50_000_000)
			if res.Reason != cpu.StopHalt {
				t.Fatalf("seed %d swivel=%v: stop = %v", seed, swiv, res.Reason)
			}
			if !swiv {
				want = got
			} else if got != want {
				t.Fatalf("seed %d: Swivel changed the result: %#x vs %#x", seed, got, want)
			}
		}
	}
}

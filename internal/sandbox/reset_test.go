package sandbox

import (
	"testing"

	"hfi/internal/cpu"
	"hfi/internal/sfi"
	"hfi/internal/wasm"
)

// statefulModule carries a data segment and mutates it: run() loads the
// counter at offset 0, increments it in place, grows memory by one page and
// pokes the new page, then returns the loaded value. Back-to-back invokes
// therefore return 10, 11, 12, ... — unless the instance is Reset between
// them.
func statefulModule() *wasm.Module {
	m := wasm.NewModule("stateful", 1, 16)
	m.AddData(0, []byte{10})
	f := m.Func("run", 0)
	zero, v, tmp, idx := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	f.MovImm(zero, 0)
	f.Load(1, v, zero, 0)
	f.Add32Imm(tmp, v, 1)
	f.Store(1, zero, 0, tmp) // clobbers the data segment AND dirties the heap
	f.MovImm(tmp, 1)
	f.Grow(idx, tmp)
	f.MulImm(idx, idx, wasm.PageSize)
	f.Store(1, idx, 0, v) // dirty the freshly grown page
	f.Ret(v)
	return m
}

// TestResetRestoresInstance: after Reset, a warm instance must be
// indistinguishable from a freshly instantiated one — data segments
// replayed, dirtied heap discarded, page count restored.
func TestResetRestoresInstance(t *testing.T) {
	for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.BoundsCheck, sfi.HFI} {
		mod := statefulModule()
		rt := NewRuntime()
		inst, err := rt.Instantiate(mod, scheme, wasm.Options{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		eng := cpu.NewInterp(rt.M)

		invoke := func() uint64 {
			res, got := inst.Invoke(eng, 10_000_000)
			if res.Reason != cpu.StopHalt {
				t.Fatalf("%v: stop = %v", scheme, res.Reason)
			}
			return got
		}

		if got := invoke(); got != 10 {
			t.Fatalf("%v: first run = %d, want 10", scheme, got)
		}
		if got := invoke(); got != 11 {
			t.Fatalf("%v: second run = %d, want 11 (module is supposed to be stateful)", scheme, got)
		}
		inst.SyncPages()
		if inst.CurPages == mod.MemPages {
			t.Fatalf("%v: memory did not grow", scheme)
		}

		inst.Reset()
		if inst.CurPages != mod.MemPages {
			t.Fatalf("%v: pages after Reset = %d, want %d", scheme, inst.CurPages, mod.MemPages)
		}
		if got := inst.ReadHeap(0, 1); got[0] != 10 {
			t.Fatalf("%v: data segment not replayed (byte 0 = %d)", scheme, got[0])
		}
		if got := invoke(); got != 10 {
			t.Fatalf("%v: run after Reset = %d, want 10 (fresh-instance behaviour)", scheme, got)
		}
		// The previously grown page must read back as zero after another
		// Reset — Madvise discarded the dirtied image.
		inst.Reset()
		if got := inst.ReadHeap(uint32(mod.MemPages)*wasm.PageSize, 1); got[0] != 0 {
			t.Fatalf("%v: grown page survived Reset (byte = %#x)", scheme, got[0])
		}
	}
}

// TestResetAfterFuelExhaustion: the serving layer's timeout path — a run
// stopped mid-flight by the instruction budget (possibly inside an HFI
// context) must be fully recoverable via Reset on the same instance.
func TestResetAfterFuelExhaustion(t *testing.T) {
	mod := statefulModule()
	rt := NewRuntime()
	inst, err := rt.Instantiate(mod, sfi.HFI, wasm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := cpu.NewInterp(rt.M)

	res, _ := inst.Invoke(eng, 5) // starve it mid-springboard/guest
	if res.Reason != cpu.StopLimit {
		t.Fatalf("stop = %v, want limit", res.Reason)
	}
	inst.Reset()
	if rt.M.HFI.Enabled {
		t.Fatal("HFI context still active after Reset")
	}
	res, got := inst.Invoke(eng, 10_000_000)
	if res.Reason != cpu.StopHalt || got != 10 {
		t.Fatalf("post-Reset run = %d (stop=%v), want 10/halt", got, res.Reason)
	}
}

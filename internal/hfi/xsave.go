package hfi

import "encoding/binary"

// XsaveSize is the size in bytes of the HFI component of an xsave area:
// both register banks (active + shadow), the MSR pair, and the mode/valid
// flags. The paper's save-hfi-regs xsave flag (§3.3.3) makes the OS save
// and restore exactly this state across process context switches.
const XsaveSize = 2*bankEncodedSize + 8 /* msr */ + 8 /* flags */

const bankEncodedSize = (NumCodeRegions+NumDataRegions+NumExplicitRegions)*RegionTSize + SandboxTSize

func encodeBank(b *Bank, buf []byte) int {
	off := 0
	for i := range b.Code {
		r := EncodeImplicitRegion(b.Code[i])
		if b.Code[i].Valid {
			r[24] = 1 // reserved word doubles as valid flag in the save image
		}
		copy(buf[off:], r[:])
		off += RegionTSize
	}
	for i := range b.Data {
		r := EncodeImplicitRegion(b.Data[i])
		if b.Data[i].Valid {
			r[24] = 1
		}
		copy(buf[off:], r[:])
		off += RegionTSize
	}
	for i := range b.Expl {
		r := EncodeExplicitRegion(b.Expl[i])
		if b.Expl[i].Valid {
			r[24] = 1
		}
		copy(buf[off:], r[:])
		off += RegionTSize
	}
	sb := EncodeSandboxT(b.Cfg)
	copy(buf[off:], sb[:])
	off += SandboxTSize
	return off
}

func decodeBank(b *Bank, buf []byte) int {
	off := 0
	for i := range b.Code {
		b.Code[i] = DecodeImplicitRegion(buf[off:])
		b.Code[i].Valid = buf[off+24] == 1
		off += RegionTSize
	}
	for i := range b.Data {
		b.Data[i] = DecodeImplicitRegion(buf[off:])
		b.Data[i].Valid = buf[off+24] == 1
		off += RegionTSize
	}
	for i := range b.Expl {
		b.Expl[i] = DecodeExplicitRegion(buf[off:])
		b.Expl[i].Valid = buf[off+24] == 1
		off += RegionTSize
	}
	b.Cfg = DecodeSandboxT(buf[off:])
	off += SandboxTSize
	return off
}

// Xsave serializes the complete HFI state into an xsave area image. It is
// used by the simulated OS on context switch and by the guest xsave
// instruction (which traps in native sandboxes before reaching here).
func (s *State) Xsave() [XsaveSize]byte {
	var buf [XsaveSize]byte
	off := encodeBank(&s.Bank, buf[:])
	off += encodeBank(&s.saved, buf[off:])
	binary.LittleEndian.PutUint32(buf[off:], uint32(s.MSR))
	binary.LittleEndian.PutUint32(buf[off+4:], 0)
	off += 8
	var flags uint64
	if s.Enabled {
		flags |= 1
	}
	if s.savedValid {
		flags |= 2
	}
	binary.LittleEndian.PutUint64(buf[off:], flags)
	return buf
}

// Xrstor restores HFI state from an xsave image produced by Xsave.
// Restoring while a native sandbox is running breaks isolation, so the
// execution engines trap that case (via PrivilegedAllowed) before calling
// here.
func (s *State) Xrstor(buf []byte) {
	off := decodeBank(&s.Bank, buf)
	off += decodeBank(&s.saved, buf[off:])
	s.MSR = ExitReason(binary.LittleEndian.Uint32(buf[off:]))
	off += 8
	flags := binary.LittleEndian.Uint64(buf[off:])
	s.Enabled = flags&1 != 0
	s.savedValid = flags&2 != 0
	s.Gen++
}

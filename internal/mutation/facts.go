package mutation

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/verifier"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// Fact-corruption operators: the soundness bench for the proof-carrying
// side of the verifier. Where the instruction operators corrupt programs
// and demand the verifier reject them, these corrupt the Facts artifact a
// verified program ships with and demand verifier.AuditFacts — the
// independent re-derivation — reject the artifact. A corrupted fact that
// survived the audit would make the interpreter elide a check it must not
// elide, so any survivor is executed under the corrupted artifact with the
// canary-page escape oracle watching: a forged fact that lets a mutant
// touch a canary page is a verifier bug, not an interpreter bug.

// factOperator corrupts a cloned Facts artifact at one instruction site.
type factOperator struct {
	name string
	// sites returns the applicable instruction indices for a program and
	// its genuine artifact.
	sites func(p *isa.Program, f *verifier.Facts) []int
	// apply corrupts the clone at idx.
	apply func(p *isa.Program, f *verifier.Facts, idx int)
}

// bogusDomSite picks a deterministic instruction that cannot be a
// dominating identical check: the last non-memory instruction (every
// program ends in halt/ret, so one exists).
func bogusDomSite(p *isa.Program, idx int) int {
	for j := len(p.Instrs) - 1; j >= 0; j-- {
		switch p.Instrs[j].Op {
		case isa.OpLoad, isa.OpStore, isa.OpHLoad, isa.OpHStore:
			continue
		}
		if j != idx {
			return j
		}
	}
	return 0
}

var factOperators = []factOperator{
	{
		// A proved resident interval is widened by 8 GiB: the claim now
		// reaches past every window the runtime maps. The audit must
		// reject it (rule "fact-window": the widened interval no longer
		// fits its claimed window); a survivor would let the interpreter
		// elide the page-decision lookup for an access the proof no
		// longer bounds.
		name: "widen-fact-interval",
		sites: func(p *isa.Program, f *verifier.Facts) []int {
			var s []int
			for i, b := range f.Bits {
				if b&verifier.FactResident != 0 {
					s = append(s, i)
				}
			}
			return s
		},
		apply: func(p *isa.Program, f *verifier.Facts, idx int) {
			f.Mem[idx].EA.Hi += sfi.GuardReservation
		},
	},
	{
		// Page-residency is forged onto an access the verifier never
		// proved uniform: the bit is set, the claimed interval spans the
		// whole first window, as if the analysis had discharged it. The
		// audit must reject (rule "fact-claim": the bit is not
		// re-derivable); a survivor would elide the dynamic check for an
		// arbitrary computed address.
		name: "forge-resident-fact",
		sites: func(p *isa.Program, f *verifier.Facts) []int {
			if len(f.Windows) == 0 {
				return nil
			}
			var s []int
			for i := range p.Instrs {
				op := p.Instrs[i].Op
				if (op == isa.OpLoad || op == isa.OpStore) && f.Bits[i]&verifier.FactResident == 0 {
					s = append(s, i)
				}
			}
			return s
		},
		apply: func(p *isa.Program, f *verifier.Facts, idx int) {
			w := f.Windows[0]
			f.Bits[idx] |= verifier.FactResident
			f.Mem[idx].Window = 0
			f.Mem[idx].Size = p.Instrs[idx].Size
			f.Mem[idx].EA = verifier.Interval{Lo: w.Lo, Hi: w.Hi - uint64(p.Instrs[idx].Size)}
		},
	},
	{
		// A check is marked dominated when it is not: either the bit is
		// forged outright onto an unproven access, or a genuine dominated
		// fact is re-pointed at a witness that is no check at all. The
		// audit must reject (rules "fact-claim" / "fact-dominated"); a
		// survivor would skip the check on the first dynamic execution of
		// an access path the proof never covered.
		name: "fake-dominated-check",
		sites: func(p *isa.Program, f *verifier.Facts) []int {
			var s []int
			for i := range p.Instrs {
				op := p.Instrs[i].Op
				if op == isa.OpLoad || op == isa.OpStore {
					s = append(s, i)
				}
			}
			return s
		},
		apply: func(p *isa.Program, f *verifier.Facts, idx int) {
			f.Bits[idx] |= verifier.FactDominated
			f.Mem[idx].DomSite = int32(bogusDomSite(p, idx))
		},
	},
}

// runFactOps sweeps the fact-corruption operators for one (workload,
// scheme) pair: clone the genuine artifact, corrupt one fact, audit; any
// artifact the audit accepts is executed under the corruption with the
// escape oracle armed.
func runFactOps(rep *Report, w workloads.Workload, scheme sfi.Scheme, maxSites int, limit uint64) error {
	rt := sandbox.NewRuntime()
	inst, err := rt.Instantiate(w.Build(1), scheme, wasm.Options{})
	if err != nil {
		return err
	}
	prog := inst.C.Prog
	facts := inst.C.Facts
	if facts == nil {
		return fmt.Errorf("no facts artifact on verified image")
	}
	cfg := wasm.VerifyConfig(inst.C)

	var baseReason cpu.StopReason
	var baseOut uint64
	baselineDone := false

	for _, op := range factOperators {
		sites := op.sites(prog, facts)
		if len(sites) == 0 {
			continue
		}
		stride := (len(sites) + maxSites - 1) / maxSites
		for si := 0; si < len(sites); si += stride {
			idx := sites[si]
			mut := facts.Clone()
			op.apply(prog, mut, idx)
			res := Result{
				Workload: w.Name, Scheme: scheme, Operator: op.name,
				Index: idx, Instr: prog.Instrs[idx].String(),
			}
			if aerr := verifier.AuditFacts(prog, cfg, mut); aerr != nil {
				res.Outcome = KilledStatic
				res.Detail = firstViolation(aerr)
				rep.Killed++
			} else {
				if !baselineDone {
					baseReason, baseOut, err = runBaseline(w, scheme, limit)
					if err != nil {
						return err
					}
					baselineDone = true
				}
				out, detail, err := runFactMutant(w, scheme, mut, limit, baseReason, baseOut)
				if err != nil {
					return err
				}
				res.Outcome = out
				res.Detail = detail
				switch out {
				case Escaped:
					rep.Escapes = append(rep.Escapes, res)
				case Equivalent:
					rep.Equivalent++
				default:
					rep.Harmless++
				}
			}
			rep.Total++
			rep.Results = append(rep.Results, res)
		}
	}
	return nil
}

// runFactMutant executes the unmutated program under a corrupted facts
// artifact, with canary pages and the MemHook escape oracle exactly as
// runMutant arms them for instruction mutants.
func runFactMutant(w workloads.Workload, scheme sfi.Scheme, mut *verifier.Facts, limit uint64, baseReason cpu.StopReason, baseOut uint64) (Outcome, string, error) {
	rt := sandbox.NewRuntime()
	mod := w.Build(1)
	inst, err := rt.Instantiate(mod, scheme, wasm.Options{})
	if err != nil {
		return Escaped, "", err
	}
	invokeArgs := bindHostEnv(rt, inst, mod, w.Name)
	inst.AttachFacts(mut)

	type span struct{ lo, hi uint64 }
	owned := []span{
		{inst.CodeBase, inst.CodeBase + inst.CodeSize},
		{inst.HeapBase, inst.HeapBase + inst.HeapReserved},
		{inst.AuxBase, inst.AuxBase + inst.AuxSize},
	}
	for i, b := range inst.ExtraMemBases {
		if b != 0 {
			owned = append(owned, span{b, b + inst.ExtraMemReserved[i]})
		}
	}
	m := rt.M
	for _, at := range []uint64{inst.HeapBase + inst.HeapReserved, inst.AuxBase + inst.AuxSize} {
		_ = m.AS.MapFixed(at, 4*kernel.OSPageSize, kernel.ProtRead|kernel.ProtWrite)
	}
	var escape string
	m.MemHook = func(pc, addr uint64, size uint8, write bool) {
		if escape != "" {
			return
		}
		end := addr + uint64(size)
		for _, s := range owned {
			if addr >= s.lo && end <= s.hi {
				return
			}
		}
		kind := "load"
		if write {
			kind = "store"
		}
		escape = fmt.Sprintf("%s of %d bytes at %#x (pc %#x) outside sandbox", kind, size, addr, pc)
	}
	res, out := inst.Invoke(cpu.NewInterp(m), limit, invokeArgs...)
	m.MemHook = nil

	if escape != "" {
		return Escaped, escape, nil
	}
	if res.Reason == baseReason && out == baseOut {
		return Equivalent, fmt.Sprintf("identical to baseline: stop=%v result=%#x", res.Reason, out), nil
	}
	return Harmless, fmt.Sprintf("contained: stop=%v result=%#x (baseline stop=%v result=%#x)", res.Reason, out, baseReason, baseOut), nil
}

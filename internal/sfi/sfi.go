// Package sfi defines the memory-isolation schemes the evaluation compares
// (§2, §5.2) and the per-access instruction sequences each one requires.
// The Wasm compiler in internal/wasm instantiates one scheme per build:
//
//   - None: no isolation; the unsafe-native baseline (Table 1's
//     Lucet(Unsafe) analogue).
//   - GuardPages: the production Wasm design — a 32-bit index added to a
//     reserved heap-base register, with an 8 GiB virtual-memory reservation
//     so out-of-bounds accesses land in PROT_NONE guard pages. Zero extra
//     instructions per access, one reserved register, huge address-space
//     cost.
//   - BoundsCheck: explicit compare-and-branch before every access. Two
//     extra instructions and two reserved registers per access; no guard
//     reservation.
//   - Masking: classic Wahbe-style SFI — AND the index with a mask. One
//     extra instruction, two reserved registers, and out-of-bounds accesses
//     become silent wraparound (no precise traps), which is why Wasm cannot
//     use it.
//   - HFI: the hmov explicit-region access. Zero extra instructions, zero
//     reserved registers, precise traps, Spectre-safe checks.
package sfi

import (
	"fmt"

	"hfi/internal/isa"
)

// Scheme selects a memory-isolation mechanism.
type Scheme uint8

// The schemes under comparison.
const (
	None Scheme = iota
	GuardPages
	BoundsCheck
	Masking
	HFI
)

var schemeNames = [...]string{"none", "guardpages", "boundscheck", "masking", "hfi"}

func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// ParseScheme converts a name from the command line into a Scheme.
func ParseScheme(name string) (Scheme, error) {
	for i, n := range schemeNames {
		if n == name {
			return Scheme(i), nil
		}
	}
	return 0, fmt.Errorf("sfi: unknown scheme %q", name)
}

// Register conventions of the Wasm ABI used by internal/wasm. SP (R15) is
// the machine stack, FP (R14) the frame pointer; schemes reserve registers
// downward from R13.
const (
	FP = isa.R14
	// HeapBaseReg holds the linear-memory base for software schemes.
	HeapBaseReg = isa.R13
	// HeapBoundReg holds the current heap size (BoundsCheck).
	HeapBoundReg = isa.R12
	// MaskReg holds the address mask (Masking).
	MaskReg = isa.R12
)

// HeapRegion is the explicit-region index (hmov number) used for the Wasm
// heap under the HFI scheme. Its flat region number is
// hfi.RegionExplicitBase + HeapRegion.
const HeapRegion = 0

// Address-space geometry shared by the sandbox runtime and the static
// verifier. Keeping these in sfi (below both) guarantees the reservation
// the runtime maps and the window the verifier proves accesses into are
// the same numbers.
const (
	// GuardReservation is the virtual-address reservation for guard-based
	// schemes: 4 GiB of addressable heap plus a 4 GiB guard, so any
	// base+index*scale+disp with a 32-bit index and a 31-bit displacement
	// lands inside the reservation (§2).
	GuardReservation = uint64(8) << 30

	// MaskingRedzone is the PROT_NONE redzone mapped directly after a
	// masked heap. Masking ANDs only the index, not the final effective
	// address, so a masked access can still reach up to disp+size bytes
	// past the heap end; the runtime maps the redzone inaccessible,
	// turning those overhangs into contained faults instead of silent
	// neighbour writes. It spans the full 2^31 displacement range the
	// access contract admits (NaCl sized its guard regions the same way),
	// so the cost is address space, never memory.
	MaskingRedzone = uint64(1) << 31

	// StackGuard is the PROT_NONE gap between the global area and the
	// machine stack. Stack frames grow downward; a frame escape of up to
	// StackGuard bytes below the stack floor faults instead of corrupting
	// the globals page or a neighbouring mapping. The verifier enforces
	// that no verified store targets more than StackGuard below the
	// frame's entry SP.
	StackGuard = uint64(64) << 10
)

// HeapReservation returns how many bytes of address space the runtime
// reserves at the heap base for a memory with the given initial and
// maximum sizes. Accesses the verifier admits are provably inside this
// window.
func (s Scheme) HeapReservation(initBytes, maxBytes uint64) uint64 {
	switch s {
	case None, GuardPages:
		return GuardReservation
	case Masking:
		return initBytes + MaskingRedzone
	default: // BoundsCheck, HFI: the full growth range is mapped upfront.
		if maxBytes == 0 {
			return initBytes
		}
		return maxBytes
	}
}

// ReservedRegs returns the physical registers a scheme removes from the
// allocatable pool. This is the register-pressure cost §6.1 quantifies.
func (s Scheme) ReservedRegs() []isa.Reg {
	switch s {
	case None, GuardPages:
		return []isa.Reg{HeapBaseReg}
	case BoundsCheck:
		return []isa.Reg{HeapBaseReg, HeapBoundReg}
	case Masking:
		return []isa.Reg{HeapBaseReg, MaskReg}
	case HFI:
		return nil
	}
	return nil
}

// NeedsScratch reports whether the per-access sequence requires a scratch
// register.
func (s Scheme) NeedsScratch() bool { return s == BoundsCheck || s == Masking }

// ExtraInstrsPerAccess returns the number of instructions a scheme adds to
// each linear-memory access (documentation and cost-model cross-checks).
func (s Scheme) ExtraInstrsPerAccess() int {
	switch s {
	case BoundsCheck:
		return 2
	case Masking:
		return 1
	}
	return 0
}

// NeedsGuardReservation reports whether sandbox creation must reserve the
// 4 GiB + 4 GiB guard-region address space (§2).
func (s Scheme) NeedsGuardReservation() bool { return s == None || s == GuardPages }

// SpectreSafe reports whether the scheme's checks also bind speculative
// execution. Only HFI's are (§3.4); software checks can be speculated past.
func (s Scheme) SpectreSafe() bool { return s == HFI }

// PreciseTraps reports whether out-of-bounds accesses trap precisely
// (required by Wasm semantics). Masking silently wraps instead.
func (s Scheme) PreciseTraps() bool { return s != Masking && s != None }

// EmitLoad emits the scheme's access sequence for a linear-memory load of
// size bytes at 32-bit index register idx plus displacement disp, into dst.
// The compiler guarantees idx holds a value < 2^32 (i32 arithmetic) and
// 0 <= disp+size <= 2^31. scratch is required for BoundsCheck and Masking;
// trapLabel is the function's bounds-trap target.
func EmitLoad(b *isa.Builder, s Scheme, size uint8, dst, idx isa.Reg, disp int64, signExt bool, scratch isa.Reg, trapLabel string) {
	ld := b.Load
	if signExt {
		ld = b.LoadS
	}
	switch s {
	case None, GuardPages:
		ld(size, dst, HeapBaseReg, idx, 1, disp)
	case BoundsCheck:
		b.AddImm(scratch, idx, disp+int64(size))
		b.Br(isa.CondGTU, scratch, HeapBoundReg, trapLabel)
		ld(size, dst, HeapBaseReg, idx, 1, disp)
	case Masking:
		b.And(scratch, idx, MaskReg)
		ld(size, dst, HeapBaseReg, scratch, 1, disp)
	case HFI:
		if signExt {
			b.Raw(isa.Instr{Op: isa.OpHLoad, Rd: dst, Rs1: isa.RegNone, Rs2: idx, Rs3: isa.RegNone,
				HReg: HeapRegion, Size: size, Scale: 1, Disp: disp, SignExt: true})
		} else {
			b.HLoad(HeapRegion, size, dst, idx, 1, disp)
		}
	default:
		panic("sfi: unknown scheme")
	}
}

// EmitStore is the store-side counterpart of EmitLoad.
func EmitStore(b *isa.Builder, s Scheme, size uint8, idx isa.Reg, disp int64, src isa.Reg, scratch isa.Reg, trapLabel string) {
	switch s {
	case None, GuardPages:
		b.Store(size, HeapBaseReg, idx, 1, disp, src)
	case BoundsCheck:
		b.AddImm(scratch, idx, disp+int64(size))
		b.Br(isa.CondGTU, scratch, HeapBoundReg, trapLabel)
		b.Store(size, HeapBaseReg, idx, 1, disp, src)
	case Masking:
		b.And(scratch, idx, MaskReg)
		b.Store(size, HeapBaseReg, scratch, 1, disp, src)
	case HFI:
		b.HStore(HeapRegion, size, idx, 1, disp, src)
	default:
		panic("sfi: unknown scheme")
	}
}

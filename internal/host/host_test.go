package host

import (
	"context"
	"errors"
	"testing"
	"time"

	"hfi/internal/cpu"
	"hfi/internal/faas"
	"hfi/internal/isa"
	"hfi/internal/sfi"
	"hfi/internal/verifier"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// equivalenceConfigs is every isolation configuration the equivalence
// invariant must hold under: the three Table 1 platform configs plus the
// raw HFI, bounds-check, and masking schemes.
func equivalenceConfigs() []faas.Config {
	return []faas.Config{
		faas.StockLucet(),
		faas.LucetHFI(),
		faas.LucetSwivel(),
		{Name: "HFI", Scheme: sfi.HFI},
		{Name: "Bounds", Scheme: sfi.BoundsCheck},
		{Name: "Masking", Scheme: sfi.Masking},
	}
}

// treq builds one test request through the options constructor — the only
// construction path the API now offers (NewRequest names the tenant; the
// workload option supplies its module and request stream).
func treq(tn workloads.Tenant, iso faas.Config, seq int) Request {
	return NewRequest(tn.Name, uint64(seq), WithWorkload(tn), WithIso(iso))
}

// TestServeEquivalence: for every tenant × isolation config, the aggregate
// response checksum under the concurrent host must equal the
// single-threaded faas.ServeTenant run over the same request set — the
// engine-equivalence invariant extended to the parallel hot path.
func TestServeEquivalence(t *testing.T) {
	const n = 5
	for _, tenant := range workloads.FaaSTenantsLight() {
		for _, cfg := range equivalenceConfigs() {
			want, err := faas.ServeTenant(tenant, cfg, n)
			if err != nil {
				t.Fatalf("%s/%s reference: %v", tenant.Name, cfg.Name, err)
			}

			s := New(Config{Workers: 4})
			chans := make([]<-chan Response, n)
			for i := 0; i < n; i++ {
				chans[i] = s.Submit(context.Background(), treq(tenant, cfg, i))
			}
			var got uint64
			for i, ch := range chans {
				r := <-ch
				if r.Status != StatusOK {
					t.Fatalf("%s/%s seq %d: status %v (stop %v, err %v)", tenant.Name, cfg.Name, i, r.Status, r.Stop, r.Err)
				}
				got ^= faas.HashResponse(i, r.Body)
			}
			s.Close()

			if got != want.Checksum {
				t.Fatalf("%s/%s: concurrent checksum %#x != single-threaded %#x", tenant.Name, cfg.Name, got, want.Checksum)
			}
		}
	}
}

// TestServeStressMixed floods ≥4 workers with ≥1000 mixed-tenant requests
// under the race detector and checks both full completion and
// checksum-identity against a single-threaded reference over the same
// deterministic schedule.
func TestServeStressMixed(t *testing.T) {
	const (
		total = 1000
		seed  = 42
	)
	mix := DefaultMix()

	s := New(Config{Workers: 4, QueueDepth: 16})
	res := RunClosedLoop(s, mix, 8, total, seed)
	s.Close()

	if res.Summary.OK != total {
		t.Fatalf("OK = %d, want %d (timeouts %d, faults %d, shed %d)",
			res.Summary.OK, total, res.Summary.Timeouts, res.Summary.Faults, res.Summary.Shed)
	}
	want, err := ReferenceChecksum(mix, total, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != want {
		t.Fatalf("stress checksum %#x != reference %#x", res.Checksum, want)
	}
	if res.Summary.P50Ns <= 0 || res.Summary.P99Ns < res.Summary.P50Ns {
		t.Fatalf("implausible latency summary: %+v", res.Summary)
	}
}

// TestFuelDeadline: a starved instruction budget surfaces as
// StatusTimeout/StopLimit, and the instance recovers (via Reset) to serve
// the same request correctly afterwards on the same worker.
func TestFuelDeadline(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[3] // templated-html
	cfg := faas.StockLucet()
	want, err := faas.ServeTenant(tenant, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 1})
	defer s.Close()

	r := s.Do(context.Background(), NewRequest(tenant.Name, 0, WithWorkload(tenant), WithIso(cfg), WithFuel(100)))
	if r.Status != StatusTimeout || r.Stop != cpu.StopLimit {
		t.Fatalf("starved request: status %v stop %v, want timeout/limit", r.Status, r.Stop)
	}
	r = s.Do(context.Background(), treq(tenant, cfg, 0))
	if r.Status != StatusOK {
		t.Fatalf("post-timeout request: status %v stop %v", r.Status, r.Stop)
	}
	if got := faas.HashResponse(0, r.Body); got != want.Checksum {
		t.Fatalf("post-timeout response checksum %#x != reference %#x (instance reset failed)", got, want.Checksum)
	}

	sum := s.Snapshot(0)
	if sum.Timeouts != 1 || sum.OK != 1 {
		t.Fatalf("summary = %+v, want 1 timeout + 1 ok", sum)
	}
}

// TestBackpressureShed: with PolicyShed and a saturated single worker, some
// admissions are rejected with StatusShed, the 429 counter matches, and
// every submission still resolves exactly once.
func TestBackpressureShed(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[3]
	cfg := faas.StockLucet()
	s := New(Config{Workers: 1, QueueDepth: 1, Policy: PolicyShed, DispatchWall: 2 * time.Millisecond})

	const total = 32
	chans := make([]<-chan Response, total)
	for i := 0; i < total; i++ {
		chans[i] = s.Submit(context.Background(), treq(tenant, cfg, i))
	}
	var ok, shed uint64
	for _, ch := range chans {
		switch r := <-ch; r.Status {
		case StatusOK:
			ok++
		case StatusShed:
			shed++
		default:
			t.Fatalf("unexpected status %v", r.Status)
		}
	}
	s.Close()

	if shed == 0 {
		t.Fatal("no sheds despite saturated worker and depth-1 queue")
	}
	if got := s.Rejected(); got != shed {
		t.Fatalf("Rejected() = %d, observed %d shed responses", got, shed)
	}
	sum := s.Snapshot(0)
	if sum.Shed != shed || sum.OK != ok || ok+shed != total {
		t.Fatalf("summary %+v inconsistent with ok=%d shed=%d", sum, ok, shed)
	}
	if sum.ShedRate <= 0 || sum.ShedRate >= 1 {
		t.Fatalf("shed rate = %v, want in (0,1)", sum.ShedRate)
	}
}

// TestBackpressureBlock: under PolicyBlock nothing is ever rejected — the
// queue being full just slows submitters down.
func TestBackpressureBlock(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[3]
	cfg := faas.StockLucet()
	s := New(Config{Workers: 2, QueueDepth: 2, Policy: PolicyBlock, DispatchWall: time.Millisecond})

	const total = 24
	done := make(chan Response, total)
	for c := 0; c < 4; c++ {
		go func(c int) {
			for i := c; i < total; i += 4 {
				done <- s.Do(context.Background(), treq(tenant, cfg, i))
			}
		}(c)
	}
	for i := 0; i < total; i++ {
		if r := <-done; r.Status != StatusOK {
			t.Fatalf("status %v", r.Status)
		}
	}
	s.Close()
	if s.Rejected() != 0 {
		t.Fatalf("PolicyBlock rejected %d requests", s.Rejected())
	}
}

// TestOpenLoopOverload: an open-loop generator offering far more than one
// worker's capacity under PolicyShed must shed, and every request must be
// accounted for exactly once.
func TestOpenLoopOverload(t *testing.T) {
	const total = 100
	s := New(Config{Workers: 1, QueueDepth: 2, Policy: PolicyShed, DispatchWall: time.Millisecond})
	res := RunOpenLoop(s, DefaultMix(), 1e6, total, 7)
	s.Close()

	sum := res.Summary
	if got := sum.Executed() + sum.Shed; got != total {
		t.Fatalf("accounted %d of %d requests: %+v", got, total, sum)
	}
	if sum.Shed == 0 {
		t.Fatal("overloaded open loop shed nothing")
	}
}

// TestWarmReuse: a single worker serving one tenant repeatedly provisions
// exactly once — the pool actually pools.
func TestWarmReuse(t *testing.T) {
	tenant := workloads.FaaSTenantsLight()[3]
	cfg := faas.StockLucet()
	s := New(Config{Workers: 1})
	for i := 0; i < 10; i++ {
		if r := s.Do(context.Background(), treq(tenant, cfg, i)); r.Status != StatusOK {
			t.Fatalf("seq %d: %v", i, r.Status)
		}
	}
	s.Close()
	if got := s.ColdStarts(); got != 1 {
		t.Fatalf("cold starts = %d, want 1", got)
	}
}

// TestScheduleDeterminism: the load schedule is a pure function of
// (mix, total, seed).
func TestScheduleDeterminism(t *testing.T) {
	a := BuildSchedule(DefaultMix(), 200, 99)
	b := BuildSchedule(DefaultMix(), 200, 99)
	for i := range a {
		if a[i].Tenant.Name != b[i].Tenant.Name || a[i].Seq != b[i].Seq || a[i].Iso != b[i].Iso {
			t.Fatalf("schedule diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// unverifiableTenant builds a tenant whose program compiles but fails
// static verification: its memory.grow limit is far past the 8 GiB guard
// reservation, so the grow path's mprotect range cannot be proven inside
// the heap window.
func unverifiableTenant() workloads.Tenant {
	m := wasm.NewModule("oversized-grow", 1, 200_000)
	f := m.Func("run", 1)
	old := f.NewReg()
	f.Grow(old, f.Param(0))
	f.BrImm(isa.CondEQ, old, 0xFFFFFFFF, "fail")
	f.Ret(old)
	f.Label("fail")
	f.Trap()
	return workloads.Tenant{
		Name: "oversized-grow", Mod: m,
		MakeRequest: func(i int) []byte { return nil },
	}
}

// TestRejectedTenantDistinctFromShed: provisioning a tenant whose program
// fails verification yields StatusRejected with a typed
// *verifier.RejectError, recorded separately from sheds and faults, and
// never executes. Healthy traffic on the same server is unaffected.
func TestRejectedTenantDistinctFromShed(t *testing.T) {
	s := New(Config{Workers: 2})
	iso := faas.Config{Name: "Guard", Scheme: sfi.GuardPages}

	r := s.Do(context.Background(), treq(unverifiableTenant(), iso, 0))
	if r.Status != StatusRejected {
		t.Fatalf("status = %v (err %v), want %v", r.Status, r.Err, StatusRejected)
	}
	var re *verifier.RejectError
	if !errors.As(r.Err, &re) {
		t.Fatalf("err = %v, want a *verifier.RejectError", r.Err)
	}

	// The same server still serves verifiable tenants.
	good := workloads.FaaSTenantsLight()[0]
	if g := s.Do(context.Background(), treq(good, iso, 0)); g.Status != StatusOK {
		t.Fatalf("healthy tenant: status = %v (err %v)", g.Status, g.Err)
	}
	s.Close()

	sum := s.Snapshot(time.Second)
	if sum.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", sum.Rejected)
	}
	if sum.Shed != 0 || sum.Faults != 0 {
		t.Fatalf("shed = %d faults = %d, want 0/0: rejection must not masquerade", sum.Shed, sum.Faults)
	}
	if sum.Executed() != 1 {
		t.Fatalf("executed = %d, want 1 (the healthy request only)", sum.Executed())
	}
}

package verifier

import "hfi/internal/isa"

// absState is the abstract machine state at one program point: one AbsVal
// per register, the tracked frame slots (keyed by entry-SP-relative
// offset), branch-derived >=-relations between registers, unit-coefficient
// linear definitions (rd = src + imm) for bounds-check idiom refinement,
// and the HFI region-staging freshness marker.
type absState struct {
	regs  [isa.NumRegs]AbsVal
	slots map[int64]AbsVal
	rels  map[[2]isa.Reg]bool // {a,b}: value(a) >= value(b), unsigned
	lin   map[isa.Reg]linDef
	// staging is the flat region number whose descriptor was freshly
	// read into the staging cell by hfi_get_region (-1: none). Only the
	// bound field may be overwritten before hfi_set_region consumes it.
	staging int
}

// linDef records rd = src + imm where the addition provably did not wrap
// (required for sound backward refinement through the definition).
type linDef struct {
	src isa.Reg
	imm int64
}

func newState() *absState {
	s := &absState{staging: -1}
	for i := range s.regs {
		s.regs[i] = topVal()
	}
	return s
}

func (s *absState) clone() *absState {
	c := &absState{regs: s.regs, staging: s.staging}
	if len(s.slots) > 0 {
		c.slots = make(map[int64]AbsVal, len(s.slots))
		for k, v := range s.slots {
			c.slots[k] = v
		}
	}
	if len(s.rels) > 0 {
		c.rels = make(map[[2]isa.Reg]bool, len(s.rels))
		for k := range s.rels {
			c.rels[k] = true
		}
	}
	if len(s.lin) > 0 {
		c.lin = make(map[isa.Reg]linDef, len(s.lin))
		for k, v := range s.lin {
			c.lin[k] = v
		}
	}
	return c
}

// regval reads a register operand; RegNone contributes exact zero.
func (s *absState) regval(r isa.Reg) AbsVal {
	if r == isa.RegNone {
		return exactVal(0)
	}
	return s.regs[r]
}

// setReg writes a register and kills facts that mention it.
func (s *absState) setReg(r isa.Reg, v AbsVal) {
	if r == isa.RegNone {
		return
	}
	s.regs[r] = v
	for k := range s.rels {
		if k[0] == r || k[1] == r {
			delete(s.rels, k)
		}
	}
	for rd, d := range s.lin {
		if rd == r || d.src == r {
			delete(s.lin, rd)
		}
	}
}

func (s *absState) addRel(a, b isa.Reg) {
	if a == isa.RegNone || b == isa.RegNone || a == b {
		return
	}
	if s.rels == nil {
		s.rels = make(map[[2]isa.Reg]bool)
	}
	s.rels[[2]isa.Reg{a, b}] = true
}

func (s *absState) hasRel(a, b isa.Reg) bool {
	if a == isa.RegNone || b == isa.RegNone {
		return false
	}
	return s.rels[[2]isa.Reg{a, b}]
}

func (s *absState) setLin(rd, src isa.Reg, imm int64) {
	if rd == isa.RegNone || src == isa.RegNone || rd == src {
		return
	}
	if s.lin == nil {
		s.lin = make(map[isa.Reg]linDef)
	}
	s.lin[rd] = linDef{src: src, imm: imm}
}

// storeSlot records a frame store at entry-SP-relative offset off.
func (s *absState) storeSlot(off int64, size uint8, v AbsVal) {
	// Invalidate every tracked slot the write overlaps.
	for o := range s.slots {
		if off < o+8 && o < off+int64(size) {
			delete(s.slots, o)
		}
	}
	if size == 8 && off%8 == 0 {
		if s.slots == nil {
			s.slots = make(map[int64]AbsVal)
		}
		s.slots[off] = v
	}
}

// loadSlot reads a frame slot; unknown slots return an unconstrained
// value of the loaded width.
func (s *absState) loadSlot(off int64, size uint8, signExt bool) AbsVal {
	if size == 8 && off%8 == 0 {
		if v, ok := s.slots[off]; ok {
			return v
		}
		return topVal()
	}
	if signExt {
		return topVal()
	}
	return intervalVal(capSize(size))
}

// merge joins o into s (widening intervals when widen is set), reporting
// whether s changed. Absent slot/lin entries are Top/absent, so maps
// intersect.
func (s *absState) merge(o *absState, widen bool) bool {
	changed := false
	for i := range s.regs {
		var nv AbsVal
		if widen {
			nv = s.regs[i].widen(o.regs[i])
		} else {
			nv = s.regs[i].join(o.regs[i])
		}
		if !nv.eq(s.regs[i]) {
			s.regs[i] = nv
			changed = true
		}
	}
	for k, v := range s.slots {
		ov, ok := o.slots[k]
		if !ok {
			delete(s.slots, k)
			changed = true
			continue
		}
		var nv AbsVal
		if widen {
			nv = v.widen(ov)
		} else {
			nv = v.join(ov)
		}
		if !nv.eq(v) {
			s.slots[k] = nv
			changed = true
		}
	}
	for k := range s.rels {
		if !o.rels[k] {
			delete(s.rels, k)
			changed = true
		}
	}
	for k, v := range s.lin {
		if ov, ok := o.lin[k]; !ok || ov != v {
			delete(s.lin, k)
			changed = true
		}
	}
	if s.staging != o.staging && s.staging != -1 {
		s.staging = -1
		changed = true
	}
	return changed
}

func (s *absState) eq(o *absState) bool {
	if s.regs != o.regs || s.staging != o.staging {
		return false
	}
	if len(s.slots) != len(o.slots) || len(s.rels) != len(o.rels) || len(s.lin) != len(o.lin) {
		return false
	}
	for k, v := range s.slots {
		if ov, ok := o.slots[k]; !ok || ov != v {
			return false
		}
	}
	for k := range s.rels {
		if !o.rels[k] {
			return false
		}
	}
	for k, v := range s.lin {
		if ov, ok := o.lin[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

package cpu

import (
	"errors"
	"fmt"
)

// ErrSubstrate is the sentinel for corruption detected in the simulator
// substrate itself — state the execution engines trust between checks:
// cached page decisions, tier-gate verdicts, clock rails, heap images.
// Detection paths wrap it in a *SubstrateError naming the audited layer.
// The serving layer folds detected substrate faults into the ordinary
// fault outcome (after quarantining the instance), so the conservation
// identity admitted == ok+timeout+fault+shed+rejected+canceled holds with
// substrate chaos active.
var ErrSubstrate = errors.New("substrate state corruption detected")

// SubstrateError is the typed fault a substrate cross-audit raises when it
// finds state that cannot exist in a correct system: a cache generation
// tag ahead of its source, a gate verdict claiming future freshness, clock
// rails in disagreement, or a heap that fails its verified-reset hash.
type SubstrateError struct {
	// Layer names the audit that fired: "heap-hash", "dtc-gen",
	// "tier-gate", or "clock-drift".
	Layer string
}

func (e *SubstrateError) Error() string {
	return fmt.Sprintf("substrate state corruption detected by %s audit", e.Layer)
}

// Unwrap makes errors.Is(err, ErrSubstrate) hold for every audit layer.
func (e *SubstrateError) Unwrap() error { return ErrSubstrate }

// staleGenSkew is the forged generation distance a planted stale entry
// carries: far enough ahead that the entry can never accidentally match a
// live generation during a request (the plant is execution-inert and
// fail-safe), while remaining detectable forever — a tag ahead of its
// source is impossible state regardless of how far ahead.
const staleGenSkew = 1 << 32

// PlantStaleDTC is the chaos seam for FaultTLBStale: it forges the
// data-translation cache's generation tags ahead of both sources of truth,
// modeling a suppressed invalidation — an entry claiming to have survived
// generations its sources never issued. A live plant keeps the entry
// valid, which AuditCacheGens must catch; a dead plant leaves the entry
// invalid (the shootdown was lost on an entry that was already dead), so
// no audit can see it and no consumer can be hurt by it. Either way the
// planted entry denies all access and matches no live generation, so
// execution is unaffected even if the audit were skipped — the plant
// models the *state* a lost shootdown leaves, detectably, without
// re-introducing the vulnerability it models.
func (m *Machine) PlantStaleDTC(live bool) {
	m.dtc = dtcEntry{
		page:   m.dtc.page,
		valid:  live,
		hfiGen: m.HFI.Gen + staleGenSkew,
		mapGen: m.AS.Gen() + staleGenSkew,
	}
}

// AuditCacheGens is the generation cross-audit over the interpreter's
// decision caches: every valid entry's tags must be auditable against
// their sources (tag ≤ current generation — tags are copies of the
// generation taken at fill time, so a tag from the future is impossible in
// a correct system). Returns false when the caches hold corrupt state; the
// caller recovers with FlushDTC and surfaces a typed *SubstrateError. The
// audit is a handful of integer compares, so the host runs it at every
// segment boundary rather than sampling.
func (m *Machine) AuditCacheGens() bool {
	if m.dtc.valid && (!m.HFI.AuditTag(m.dtc.hfiGen) || !m.AS.AuditTag(m.dtc.mapGen)) {
		return false
	}
	if m.epc.valid && !m.HFI.AuditTag(m.epc.hfiGen) {
		return false
	}
	return true
}

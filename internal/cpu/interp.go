package cpu

import (
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// CostModel is the per-instruction cycle cost model used by the functional
// interpreter — the analogue of the paper's compiler-based emulation, which
// approximates HFI costs with available instructions (appendix A.2). Costs
// are in millicycles (1/1000 cycle) so that superscalar throughputs below
// one cycle per instruction are expressible. The defaults are calibrated
// against the timing core on the Sightglass suite (Fig 2 reproduces the
// calibration experiment).
type CostModel struct {
	ALU    uint64 // simple integer op
	Mul    uint64
	Div    uint64
	Branch uint64 // average cost including prediction
	Load   uint64 // base load cost (L1-hit throughput)
	Store  uint64
	// MissScale is the percentage of additional memory latency (beyond
	// the L1 hit) charged to the run: the out-of-order core overlaps
	// most of a miss, the interpreter approximates that overlap.
	MissScale uint64

	Serialize uint64 // full pipeline drain (fence, serialized enter/exit)
	HfiBase   uint64 // non-memory part of an HFI config instruction
	HfiMove   uint64 // per 8-byte metadata move memory<->HFI registers
	Syscall   uint64 // core-side cost of a syscall instruction
	Redirect  uint64 // decode-stage syscall redirect (1 cycle, §4.4)
	Hostcall  uint64 // core-side cost of a hostcall gate transition
}

// DefaultCostModel returns the calibrated emulation cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		ALU:       400,
		Mul:       1_100,
		Div:       12_000,
		Branch:    900,
		Load:      1_100,
		Store:     800,
		MissScale: 35,
		Serialize: uint64(hfi.SerializeCycles) * 1000,
		HfiBase:   2_000,
		HfiMove:   1_500,
		Syscall:   60_000,
		Redirect:  1_000,
		// An in-process domain transition: no mode switch, no page-table
		// swap — the "near-zero-cost transition" argument. The host-side
		// work (marshalling, resource access) is charged separately on the
		// kernel clock by the dispatcher.
		Hostcall: 18_000,
	}
}

// Interp is the functional execution engine. It shares the Machine's
// architectural state and accumulates cost in millicycles.
type Interp struct {
	M    *Machine
	Cost CostModel

	// UseCaches enables the cache hierarchy for load/store cost; when
	// false loads cost their base (pure-compute calibration runs).
	UseCaches bool

	// NoFastPath disables the dispatch fast paths — the machine's fetch
	// code cache and the 1-entry data-translation cache — forcing every
	// fetch through the binary search and every access through the full
	// HFI + MMU checks. Architectural results are identical either way
	// (the differential tests assert this); the flag exists so they can.
	NoFastPath bool

	// TrustFacts enables the verifier-fact elision path (facts.go): the
	// dynamic page-decision lookup is skipped for accesses carrying a
	// runtime-re-validated proof, while the cost model is billed
	// identically. Default on (NewInterp); orthogonal to NoFastPath so
	// the differential tests can cross the two.
	TrustFacts bool

	// domSafe, per run, admits dominated-check elision: set at Run entry
	// when the machine enters facts-carrying code at its proof root, and
	// cleared for the rest of the run once any fault is resumed (the
	// handler may transfer control past the dominating check).
	domSafe bool

	// segment marks a SegmentRun in progress: the run is one slice of a
	// larger logical run driven by the tiered engine. Dominated-check
	// elision is off (segments start mid-program, past the proof root) and
	// the StopLimit return does NOT fold cycles into the kernel clock —
	// Clock.AdvanceCycles truncates per call, so extra fold points at
	// segment seams would drift the ns timeline away from a monolithic
	// run. Deferring keeps the AdvanceCycles call sequence — and therefore
	// the observable clock — bit-identical between the engines.
	segment bool

	milliCycles uint64

	// costTab holds the per-opcode dispatch charge precomputed from Cost,
	// so the hot loop charges a single table entry instead of selecting
	// among cost-model fields per opcode. Rebuilt at Run entry whenever
	// Cost differs from costSrc.
	costTab   [isa.OpCount]uint64
	costSrc   CostModel
	costTabOK bool
}

// NewInterp returns an interpreter over m with the default cost model and
// caches enabled.
func NewInterp(m *Machine) *Interp {
	return &Interp{M: m, Cost: DefaultCostModel(), UseCaches: true, TrustFacts: true}
}

// Table expands the model into the per-opcode dispatch charge. Opcodes
// whose charge depends on runtime state (memory ops, syscalls, HFI config)
// keep their composite accounting in the dispatch loop; their entries hold
// the fixed part. The tiered engine's lowering bills fused superinstructions
// from this same table (hfilint forbids internal/tier from spelling a cost
// by hand), so a model change cannot drift the two engines apart.
func (c CostModel) Table() [isa.OpCount]uint64 {
	var tab [isa.OpCount]uint64
	for op := range tab {
		tab[op] = c.ALU
	}
	tab[isa.OpMul] = c.Mul
	tab[isa.OpDiv] = c.Div
	tab[isa.OpRem] = c.Div
	tab[isa.OpBr] = c.Branch
	tab[isa.OpJmp] = c.Branch
	tab[isa.OpJmpInd] = c.Branch
	tab[isa.OpCall] = c.Branch + c.Store
	tab[isa.OpCallInd] = c.Branch + c.Store
	tab[isa.OpRet] = c.Branch + c.Load
	tab[isa.OpFence] = c.Serialize
	tab[isa.OpSyscall] = c.Syscall
	tab[isa.OpHostcall] = c.Hostcall
	tab[isa.OpXsave] = c.Serialize
	tab[isa.OpXrstor] = c.Serialize
	return tab
}

// buildCostTab precomputes the dispatch charge table from the current cost
// model.
func (ip *Interp) buildCostTab() {
	ip.costTab = ip.Cost.Table()
	ip.costSrc = ip.Cost
	ip.costTabOK = true
}

func (ip *Interp) charge(mc uint64) { ip.milliCycles += mc }

// chargeMem charges a memory access: base cost plus the scaled miss
// penalty from the hierarchy.
func (ip *Interp) chargeMem(addr uint64, store bool) {
	base := ip.Cost.Load
	if store {
		base = ip.Cost.Store
	}
	if !ip.UseCaches {
		ip.charge(base)
		return
	}
	var lat int
	if store {
		lat = ip.M.Hier.StoreLatency(addr)
	} else {
		lat = ip.M.Hier.LoadLatency(addr)
	}
	extra := 0
	if l1 := ip.M.Hier.Lat.L1; lat > l1 {
		extra = (lat - l1) * int(ip.Cost.MissScale) * 10 // % of a cycle -> millicycles
	}
	ip.charge(base + uint64(extra))
}

// Cycles returns whole cycles consumed since construction or the last
// ResetCost.
func (ip *Interp) Cycles() uint64 { return ip.milliCycles / 1000 }

// ResetCost zeroes the accumulated cost.
func (ip *Interp) ResetCost() { ip.milliCycles = 0 }

// syncClock folds accumulated cycle time into the kernel clock, so kernel
// cost (ns) and core cost (cycles) share one timeline.
func (ip *Interp) syncClock() {
	c := ip.Cycles()
	ip.milliCycles -= c * 1000
	ip.M.Cycles += c
	ip.M.Kern.Clock.AdvanceCycles(c, kernel.CoreGHz)
}

// Run executes from the machine's current PC until a stop condition or
// until maxInstrs instructions retire (0 = no limit).
func (ip *Interp) Run(maxInstrs uint64) RunResult {
	m := ip.M
	if !ip.costTabOK || ip.Cost != ip.costSrc {
		ip.buildCostTab()
	}
	if maxInstrs == 0 {
		maxInstrs = ^uint64(0) // unlimited; one compare in the loop header
	}
	if ip.segment {
		// A segment never starts a dominator-rooted run of its own;
		// declining the elision is always architecturally sound (the full
		// checks run instead, billed identically).
		ip.domSafe = false
	} else {
		ip.domSafe = ip.TrustFacts && m.factRunEntrySafe(m.PC)
	}
	for n := uint64(0); n < maxInstrs; n++ {
		pc := m.PC
		if pc == HostReturn {
			ip.syncClock()
			return RunResult{Reason: StopHostReturn}
		}
		// CheckExec is a no-op while HFI is disabled, so the call is gated
		// on the cheap Enabled load; when enabled, the 1-entry exec cache
		// skips the region walk for straight-line fetches from one page
		// (keeping the observable check counter identical).
		if m.HFI.Enabled {
			if !ip.NoFastPath && m.epcHit(pc) {
				m.HFI.ChecksCode++
			} else {
				if f := m.HFI.CheckExec(pc); f != nil {
					if res, ok := ip.fault(pc, pc, f, false); !ok {
						return res
					}
					continue
				}
				if !ip.NoFastPath {
					m.epcFill(pc)
				}
			}
		}
		// Fetch: the code-cache range check is inlined here — FetchInstr
		// is the same logic behind a call, too hot for the dispatch loop.
		var in *isa.Instr
		if ip.NoFastPath {
			in = m.fetchAt(pc)
		} else if off := pc - m.ccBase; off < m.ccLimit-m.ccBase && off&(isa.InstrBytes-1) == 0 {
			in = &m.ccInstrs[off/isa.InstrBytes]
		} else {
			in = m.FetchInstr(pc)
		}
		if in == nil {
			if res, ok := ip.fault(pc, pc, nil, true); !ok {
				return res
			}
			continue
		}
		m.Instret++
		next := pc + isa.InstrBytes

		switch in.Op {
		case isa.OpNop:
			ip.charge(ip.costTab[isa.OpNop])
		case isa.OpHalt:
			ip.syncClock()
			return RunResult{Reason: StopHalt}

		case isa.OpMovImm:
			m.Regs[in.Rd] = uint64(in.Imm)
			ip.charge(ip.costTab[isa.OpMovImm])
		case isa.OpMov:
			m.Regs[in.Rd] = m.Regs[in.Rs1]
			ip.charge(ip.costTab[isa.OpMov])

		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor:
			// The workhorse ALU ops get their own arm: they cannot fault,
			// so the dispatch table jumps straight to the arithmetic
			// without the aluOp call.
			b := m.regVal(in.Rs2)
			if in.UseImm {
				b = uint64(in.Imm)
			}
			a := m.Regs[in.Rs1]
			var v uint64
			switch in.Op {
			case isa.OpAdd:
				v = a + b
			case isa.OpSub:
				v = a - b
			case isa.OpAnd:
				v = a & b
			case isa.OpOr:
				v = a | b
			default:
				v = a ^ b
			}
			if in.W32 {
				v = uint64(uint32(v))
			}
			m.Regs[in.Rd] = v
			ip.charge(ip.costTab[in.Op])

		case isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpNot, isa.OpNeg:
			// Shifts, multiply and the unary ops cannot fault either.
			b := m.regVal(in.Rs2)
			if in.UseImm {
				b = uint64(in.Imm)
			}
			a := m.Regs[in.Rs1]
			var v uint64
			switch in.Op {
			case isa.OpShl:
				v = a << (b & 63)
			case isa.OpShr:
				v = a >> (b & 63)
			case isa.OpSar:
				v = uint64(int64(a) >> (b & 63))
			case isa.OpMul:
				v = a * b
			case isa.OpNot:
				v = ^a
			default:
				v = -a
			}
			if in.W32 {
				v = uint64(uint32(v))
			}
			m.Regs[in.Rd] = v
			ip.charge(ip.costTab[in.Op])

		case isa.OpDiv, isa.OpRem:
			b := m.regVal(in.Rs2)
			if in.UseImm {
				b = uint64(in.Imm)
			}
			v, ok := aluOp(in.Op, m.Regs[in.Rs1], b)
			if in.W32 {
				v = uint64(uint32(v))
			}
			if !ok {
				// Division by zero raises a hardware fault.
				if res, okc := ip.fault(pc, 0, nil, false); !okc {
					return res
				}
				continue
			}
			m.Regs[in.Rd] = v
			// Precomputed per-opcode charge replaces a second dispatch
			// switch on the hot path.
			ip.charge(ip.costTab[in.Op])

		case isa.OpLoad, isa.OpStore:
			addr := m.plainEA(in)
			write := in.Op == isa.OpStore
			if !ip.NoFastPath && m.dtcHit(addr, in.Size, write) {
				// Fast path: the 1-entry DTC proves this access passes
				// both the HFI and MMU checks. Keep the observable
				// check counter identical to the slow path.
				if m.HFI.Enabled {
					m.HFI.ChecksData++
				}
			} else if ip.TrustFacts && m.factElidePlain(pc, addr, in.Size, ip.domSafe) {
				// Elision path: a verifier fact, re-validated against the
				// live machine, proves this access passes both checks.
				// Counters and cost stay identical to the other paths.
				if m.HFI.Enabled {
					m.HFI.ChecksData++
				}
				m.FactElisions++
				// Refill the DTC so page-local successors take the 1-entry
				// cache hit instead of re-walking the fact gate. Without
				// this the elide path starves the DTC: the gate — cheap,
				// but dearer than a cache hit on schemes whose dynamic
				// check is itself a single hit — became the steady-state
				// cost of every fact-covered access (the 0.85× guardpages
				// regression in BENCH_PR7).
				if !ip.NoFastPath {
					m.dtcFill(addr)
				}
			} else {
				if f := m.HFI.CheckData(addr, in.Size, write); f != nil {
					if res, ok := ip.fault(pc, addr, f, false); !ok {
						return res
					}
					continue
				}
				if !m.checkMMU(addr, in.Size, write) {
					if res, ok := ip.fault(pc, addr, nil, true); !ok {
						return res
					}
					continue
				}
				if !ip.NoFastPath {
					m.dtcFill(addr)
				}
			}
			if m.MemHook != nil {
				m.MemHook(pc, addr, in.Size, write)
			}
			if write {
				m.Mem().Write(addr, in.Size, m.Regs[in.Rs3])
			} else {
				m.Regs[in.Rd] = m.loadValue(addr, in)
			}
			ip.chargeMem(addr, write)

		case isa.OpHLoad, isa.OpHStore:
			write := in.Op == isa.OpHStore
			addr, f := m.HFI.ExplicitEA(int(in.HReg), m.regVal(in.Rs2), in.Scale, in.Disp, in.Size, write)
			if f != nil {
				if res, ok := ip.fault(pc, addr, f, false); !ok {
					return res
				}
				continue
			}
			if ip.TrustFacts && m.factElideHfi(pc, int(in.HReg)) {
				// ExplicitEA (the fault source) has already bounds-checked
				// the address into the region; the fact gate re-validated
				// the region's span against the page table, so the MMU
				// lookup is redundant.
				m.FactElisions++
			} else if !m.checkMMU(addr, in.Size, write) {
				if res, ok := ip.fault(pc, addr, nil, true); !ok {
					return res
				}
				continue
			}
			if m.MemHook != nil {
				m.MemHook(pc, addr, in.Size, write)
			}
			if write {
				m.Mem().Write(addr, in.Size, m.Regs[in.Rs3])
			} else {
				m.Regs[in.Rd] = m.loadValue(addr, in)
			}
			ip.chargeMem(addr, write)

		case isa.OpBr:
			b := m.regVal(in.Rs2)
			if in.UseImm {
				b = uint64(in.Imm)
			}
			if in.Cond.Eval(m.Regs[in.Rs1], b) {
				next = in.Target
			}
			ip.charge(ip.costTab[isa.OpBr])
		case isa.OpJmp:
			next = in.Target
			ip.charge(ip.costTab[isa.OpJmp])
		case isa.OpJmpInd:
			next = m.Regs[in.Rs1]
			ip.charge(ip.costTab[isa.OpJmpInd])
		case isa.OpCall, isa.OpCallInd:
			sp := m.Regs[isa.SP] - 8
			if !m.checkMMU(sp, 8, true) {
				if res, ok := ip.fault(pc, sp, nil, true); !ok {
					return res
				}
				continue
			}
			if m.MemHook != nil {
				m.MemHook(pc, sp, 8, true)
			}
			m.Mem().Write(sp, 8, next)
			m.Regs[isa.SP] = sp
			if in.Op == isa.OpCall {
				next = in.Target
			} else {
				next = m.Regs[in.Rs1]
			}
			ip.charge(ip.costTab[in.Op])
		case isa.OpRet:
			sp := m.Regs[isa.SP]
			if !m.checkMMU(sp, 8, false) {
				if res, ok := ip.fault(pc, sp, nil, true); !ok {
					return res
				}
				continue
			}
			if m.MemHook != nil {
				m.MemHook(pc, sp, 8, false)
			}
			next = m.Mem().Read(sp, 8)
			m.Regs[isa.SP] = sp + 8
			ip.charge(ip.costTab[isa.OpRet])

		case isa.OpSyscall:
			ip.charge(ip.costTab[isa.OpSyscall])
			ip.syncClock()
			serialized := m.HFI.Enabled && m.HFI.Bank.Cfg.Serialized && !m.HFI.SyscallAllowed()
			nxt, redirected, f := m.doSyscall(pc)
			if f != nil {
				if res, ok := ip.fault(pc, pc, f, false); !ok {
					return res
				}
				continue
			}
			if redirected {
				// The decode-stage redirect (§4.4) plus, for serialized
				// sandboxes, the exit drain.
				ip.charge(ip.Cost.Redirect)
				if serialized {
					ip.charge(ip.Cost.Serialize)
				}
			}
			next = nxt
			if m.Kern.Exited {
				m.PC = next
				ip.syncClock()
				return RunResult{Reason: StopExit}
			}

		case isa.OpHostcall:
			ip.charge(ip.costTab[isa.OpHostcall])
			ip.syncClock()
			nxt, f := m.doHostcall(pc)
			if f != nil {
				if res, ok := ip.fault(pc, pc, f, false); !ok {
					return res
				}
				continue
			}
			next = nxt

		case isa.OpFence:
			ip.charge(ip.costTab[isa.OpFence])
		case isa.OpClflush:
			m.Hier.Flush(m.regVal(in.Rs1) + uint64(in.Disp))
			ip.charge(ip.costTab[isa.OpClflush])
		case isa.OpRdtsc:
			ip.syncClock()
			m.Regs[in.Rd] = m.Cycles
			ip.charge(ip.costTab[isa.OpRdtsc])

		case isa.OpHfiEnter:
			res, f := m.hfiEnter(m.Regs[in.Rs1])
			if f != nil {
				if r, ok := ip.fault(pc, m.Regs[in.Rs1], f, false); !ok {
					return r
				}
				continue
			}
			ip.charge(ip.Cost.HfiBase + uint64(res.RegionLoads)*uint64(hfi.RegionEntrySize/8)*ip.Cost.HfiMove)
			if res.Serialize {
				ip.charge(ip.Cost.Serialize)
			}
		case isa.OpHfiExit:
			res := m.HFI.Exit()
			ip.charge(ip.Cost.HfiBase)
			if res.Serialize {
				ip.charge(ip.Cost.Serialize)
			}
			if res.Handler != 0 {
				m.LastExitPC = pc + isa.InstrBytes
				next = res.Handler
			}
		case isa.OpHfiReenter:
			res, f := m.HFI.Reenter()
			if f != nil {
				if r, ok := ip.fault(pc, 0, f, false); !ok {
					return r
				}
				continue
			}
			ip.charge(ip.Cost.HfiBase)
			if res.Serialize {
				ip.charge(ip.Cost.Serialize)
			}

		case isa.OpHfiSetRegion, isa.OpHfiGetRegion, isa.OpHfiClearRegion, isa.OpHfiClearAll:
			serialize := m.HFI.RegionUpdateSerializes()
			moves, f := m.hfiMicro(in)
			if f != nil {
				if r, ok := ip.fault(pc, 0, f, false); !ok {
					return r
				}
				continue
			}
			ip.charge(ip.Cost.HfiBase + uint64(moves)*ip.Cost.HfiMove)
			if serialize {
				ip.charge(ip.Cost.Serialize)
			}

		case isa.OpXsave:
			if !m.HFI.PrivilegedAllowed() {
				f := m.HFI.PrivFault(pc)
				if r, ok := ip.fault(pc, pc, f, false); !ok {
					return r
				}
				continue
			}
			img := m.HFI.Xsave()
			m.Mem().WriteBytes(m.Regs[in.Rs1], img[:])
			ip.charge(ip.Cost.Serialize)
		case isa.OpXrstor:
			if !m.HFI.PrivilegedAllowed() {
				// A native sandbox restoring HFI registers would break
				// sandboxing; HFI traps (§3.3.3).
				f := m.HFI.PrivFault(pc)
				if r, ok := ip.fault(pc, pc, f, false); !ok {
					return r
				}
				continue
			}
			buf := make([]byte, hfi.XsaveSize)
			m.Mem().ReadBytes(m.Regs[in.Rs1], buf)
			m.HFI.Xrstor(buf)
			ip.charge(ip.Cost.Serialize)

		default:
			if res, ok := ip.fault(pc, pc, nil, false); !ok {
				return res
			}
			continue
		}
		m.PC = next
	}
	if !ip.segment {
		ip.syncClock()
	}
	return RunResult{Reason: StopLimit}
}

// fault routes a fault through the signal path. If the handler supplies a
// resume PC, execution continues there and fault returns ok=true;
// otherwise it returns the final RunResult with ok=false.
func (ip *Interp) fault(pc, addr uint64, f *hfi.Fault, pageFault bool) (RunResult, bool) {
	ip.syncClock()
	resume := ip.M.raiseFault(pc, addr, f)
	if resume == 0 {
		return RunResult{Reason: StopFault, Fault: f, PageFault: pageFault, FaultAddr: addr, FaultPC: pc}, false
	}
	// The handler chose the resume point; control may now bypass a
	// dominating check, so dominated-check elision is off for the rest of
	// this run.
	ip.domSafe = false
	ip.M.PC = resume
	return RunResult{}, true
}

package sandbox

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// NativeSandbox wraps an unmodified native program (no recompilation, no
// instrumentation — §3.3's native sandbox type). Isolation comes entirely
// from HFI implicit regions: a code region over the program and a data
// region over its heap+stack block. System calls are redirected to the
// exit handler at the decode stage (§4.4); the trusted runtime services
// them against its policy and re-enters the sandbox.
type NativeSandbox struct {
	RT   *Runtime
	Prog *isa.Program

	CodeBase uint64
	CodeSize uint64
	DataBase uint64
	DataSize uint64

	EntryPC  uint64
	sandboxT uint64

	// Policy decides whether a redirected syscall may proceed. nil
	// allows everything.
	Policy func(sysno uint64, args [5]uint64) bool

	// Serialized sets the is-serialized flag: every enter and exit pays
	// the pipeline-drain cost but closes the §3.4 speculation windows.
	Serialized bool

	// Interposed counts syscalls serviced through the exit handler.
	Interposed uint64
	// Denied counts syscalls rejected by the policy.
	Denied uint64
}

// NewNative maps a code block and a data block and builds the native
// sandbox. gen receives the chosen code and data base addresses and
// returns the program (an "unmodified binary" in the paper's sense: plain
// loads/stores, direct syscalls). dataSize is rounded up to a power of two
// for the implicit region.
func (rt *Runtime) NewNative(codeSizeHint, dataSize uint64, serialized bool,
	gen func(codeBase, dataBase uint64) *isa.Program) (*NativeSandbox, error) {
	m := rt.M

	const springSlots = 32
	codeBlock := nextPow2(codeSizeHint + springSlots*isa.InstrBytes)
	if codeBlock < kernel.OSPageSize {
		codeBlock = kernel.OSPageSize
	}
	codeBase, err := m.AS.MapAligned(codeBlock, codeBlock, kernel.ProtRead|kernel.ProtExec)
	if err != nil {
		return nil, err
	}
	m.Kern.Clock.Advance(m.Kern.Costs.MmapReserve)

	dataBlock := nextPow2(dataSize)
	if dataBlock < kernel.OSPageSize {
		dataBlock = kernel.OSPageSize
	}
	dataBase, err := m.AS.MapAligned(dataBlock, dataBlock, kernel.ProtRead|kernel.ProtWrite)
	if err != nil {
		return nil, err
	}
	m.Kern.Clock.Advance(m.Kern.Costs.MmapReserve)

	prog := gen(codeBase+springSlots*isa.InstrBytes, dataBase)
	if prog.Base != codeBase+springSlots*isa.InstrBytes {
		return nil, fmt.Errorf("sandbox: native program base %#x, want %#x", prog.Base, codeBase+springSlots*isa.InstrBytes)
	}
	if prog.End() > codeBase+codeBlock {
		return nil, fmt.Errorf("sandbox: native program overflows its code block")
	}
	if err := m.LoadPrelinked(prog); err != nil {
		return nil, err
	}

	ns := &NativeSandbox{
		RT: rt, Prog: prog,
		CodeBase: codeBase, CodeSize: codeBlock,
		DataBase: dataBase, DataSize: dataBlock,
		Serialized: serialized,
	}

	// sandbox_t and region table live in the runtime's own memory — the
	// last page of the data block is runtime-owned metadata. (The
	// sandbox can technically read it; it contains no secrets.)
	meta := dataBase + dataBlock - uint64(kernel.OSPageSize)
	table := meta + 256
	entries := []struct {
		num  int
		body [hfi.RegionTSize]byte
	}{
		{hfi.RegionCodeBase, hfi.EncodeImplicitRegion(hfi.ImplicitRegion{
			BasePrefix: codeBase, LSBMask: codeBlock - 1, Exec: true,
		})},
		{hfi.RegionDataBase, hfi.EncodeImplicitRegion(hfi.ImplicitRegion{
			BasePrefix: dataBase, LSBMask: dataBlock - 1, Read: true, Write: true,
		})},
	}
	for i, e := range entries {
		off := table + uint64(i)*hfi.RegionEntrySize
		m.Mem().Write(off, 8, uint64(e.num))
		m.Mem().WriteBytes(off+8, e.body[:])
	}
	ns.sandboxT = meta
	cfg := hfi.Config{
		Hybrid:      false, // native: untrusted code
		Serialized:  serialized,
		ExitHandler: cpu.HostReturn,
		RegionsPtr:  table,
		RegionCount: uint64(len(entries)),
	}
	sb := hfi.EncodeSandboxT(cfg)
	m.Mem().WriteBytes(ns.sandboxT, sb[:])

	// Springboard: clear scratch registers (no host data leaks into the
	// sandbox), point SP at the sandbox stack, enter, jump to the binary.
	b := isa.NewBuilder(codeBase)
	for r := isa.R0; r <= isa.R11; r++ {
		b.MovImm(r, 0)
	}
	b.MovImm(isa.SP, int64(meta)) // stack grows down below the metadata page
	b.MovImm(isa.R6, int64(ns.sandboxT))
	b.HfiEnter(isa.R6)
	b.MovImm(isa.R6, 0)
	b.JmpAddr(prog.Base)
	spring := b.Build()
	if err := m.LoadPrelinked(spring); err != nil {
		return nil, err
	}
	ns.EntryPC = codeBase
	return ns, nil
}

// Run executes the sandboxed binary to completion, interposing on every
// exit. Completion is a SysExit syscall or an explicit halt. The returned
// result reflects the final stop.
func (ns *NativeSandbox) Run(eng cpu.Engine, limit uint64) cpu.RunResult {
	m := ns.RT.M
	m.PC = ns.EntryPC
	for {
		res := eng.Run(limit)
		if res.Reason != cpu.StopHostReturn {
			return res
		}
		reason, info := m.HFI.ReadMSR()
		switch reason {
		case hfi.ExitSyscall:
			ns.Interposed++
			args := [5]uint64{m.Regs[isa.R1], m.Regs[isa.R2], m.Regs[isa.R3], m.Regs[isa.R4], m.Regs[isa.R5]}
			if info == kernel.SysExit {
				// The binary is done.
				m.Kern.Exited = true
				m.Kern.ExitStatus = args[0]
				return cpu.RunResult{Reason: cpu.StopExit}
			}
			if ns.Policy != nil && !ns.Policy(info, args) {
				ns.Denied++
				m.Regs[isa.R0] = ^uint64(kernel.EACCES) + 1
			} else {
				m.Regs[isa.R0] = info // restore the syscall number clobbered semantics
				m.Kern.Syscall(m.AS, &m.Regs)
			}
			// Re-enter the sandbox and resume after the syscall. The
			// trusted runtime uses hfi_reenter semantics; a few cycles of
			// runtime work are charged.
			m.Kern.Clock.Advance(4)
			if _, f := m.HFI.Reenter(); f != nil {
				return cpu.RunResult{Reason: cpu.StopFault, Fault: f}
			}
			m.PC = m.LastExitPC
		case hfi.ExitInstruction:
			// Voluntary hfi_exit: the sandbox returned to the runtime.
			return res
		default:
			return res
		}
	}
}

package experiments

import (
	"fmt"
	"runtime"
	"time"

	"hfi/internal/cpu"
	"hfi/internal/faas"
	"hfi/internal/hostcall"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/workloads"
)

// HostcallPerf reports the cost of crossing the host-call boundary: the
// simulated (cost-modeled) time one guest->host->guest round trip spends,
// how many bytes it marshals, and how fast the simulator itself grinds
// through round trips (host wall-clock). The simulated figure is the one
// the paper's argument cares about — an in-process transition plus
// mediated marshalling, with no kernel round trip — and BENCH_*.json
// tracks both so a regression in either the model or the implementation
// is visible.
type HostcallPerf struct {
	SimNsPerCall    float64 // simulated ns per hostcall (core transition + dispatch + marshalling)
	MarshalBPerCall float64 // guest<->host bytes marshalled per hostcall
	CallsPerSec     float64 // host wall-clock hostcalls per second through the interpreter
	AllocsPerReq    float64 // host allocations per served request (response-copy only; the marshalling fast path is alloc-free)
}

// RunHostcallRoundTrip drives the hostcall-micro guest (clock samples plus
// 1 KiB of seeded randomness per repetition — almost nothing but boundary
// crossings) through the warm serving path for reqs requests and amortizes
// the bill per hostcall.
func RunHostcallRoundTrip(reqs int) (HostcallPerf, *stats.Table, error) {
	var hp HostcallPerf
	var micro workloads.Tenant
	for _, te := range workloads.HostcallTenants() {
		if te.Name == "hostcall-micro" {
			micro = te
		}
	}
	if micro.Mod == nil {
		return hp, nil, fmt.Errorf("hostcallperf: hostcall-micro tenant missing")
	}
	cfg := faas.Config{Name: "HFI", Scheme: sfi.HFI, World: hostcall.NewWorld(7)}
	ti, err := faas.Provision(micro, cfg)
	if err != nil {
		return hp, nil, err
	}
	body := micro.MakeRequest(0)
	if _, res := ti.ServeBody(body, 0); res.Reason != cpu.StopHalt {
		return hp, nil, fmt.Errorf("hostcallperf warmup: stop %v", res.Reason)
	}
	ti.Env.TakeCounters()

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	simStart := ti.RT.M.Kern.Clock.Now()
	t0 := time.Now()
	for i := 0; i < reqs; i++ {
		if _, res := ti.ServeBody(body, 0); res.Reason != cpu.StopHalt {
			return hp, nil, fmt.Errorf("hostcallperf req %d: stop %v", i, res.Reason)
		}
	}
	elapsed := time.Since(t0).Seconds()
	runtime.ReadMemStats(&ms1)

	calls, bytesIn, bytesOut, _ := ti.Env.TakeCounters()
	if calls == 0 {
		return hp, nil, fmt.Errorf("hostcallperf: guest made no hostcalls")
	}
	// The per-request FaaS dispatch overhead is serving-path bookkeeping,
	// not boundary cost; bill only the remainder to the round trips.
	simNs := ti.RT.M.Kern.Clock.Now() - simStart - uint64(reqs)*faas.DispatchOverheadNs
	hp.SimNsPerCall = float64(simNs) / float64(calls)
	hp.MarshalBPerCall = float64(bytesIn+bytesOut) / float64(calls)
	hp.CallsPerSec = float64(calls) / elapsed
	hp.AllocsPerReq = float64(ms1.Mallocs-ms0.Mallocs) / float64(reqs)

	tb := &stats.Table{
		Title:   "Hostcall: guest->host->guest round-trip cost (ABI v1, HFI, warm instance)",
		Columns: []string{"metric", "value"},
	}
	tb.AddRow("simulated ns / hostcall", fmt.Sprintf("%.0f", hp.SimNsPerCall))
	tb.AddRow("marshalled B / hostcall", fmt.Sprintf("%.0f", hp.MarshalBPerCall))
	tb.AddRow("hostcalls / host-sec", fmt.Sprintf("%.0fk", hp.CallsPerSec/1e3))
	tb.AddRow("allocs / request", fmt.Sprintf("%.1f", hp.AllocsPerReq))
	tb.AddNote("simulated cost = core-side gate transition + HostcallBase + HostcallCopyPerKiB x marshalled KiB; the marshalling fast path itself is alloc-free (BenchmarkHostcallRoundTrip pins 0 allocs/op)")
	return hp, tb, nil
}

package tier

import (
	"hfi/internal/cpu"
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// DefaultPromoteAfter is the number of interpreted executions a block's
// leader must observe before the block is promoted to fused execution.
const DefaultPromoteAfter = 8

// outsideChunk is the interpreter segment length used while the PC is
// outside the lowered program (springboards, trampolines): long enough to
// amortize the segment call, short enough that control realigns to block
// leaders promptly after transferring into lowered code.
const outsideChunk = 32

// Engine executes a machine against one lowered program, promoting hot
// basic blocks to fused execution and delegating everything else — cold
// blocks, unfusable tails, code outside the program, and every bail — to
// the interpreter in block-aligned segments. It implements cpu.Engine and
// is cycle-exact with a monolithic interpreter run (see the package doc).
type Engine struct {
	ip  *cpu.Interp
	m   *cpu.Machine
	low *Lowered

	// PromoteAfter is the promotion threshold; counts reset on
	// Machine.Reset (the guest context-switch point).
	PromoteAfter uint32

	counts   []uint32
	promoted []bool

	// Per-generation gate over the lowering's fact claims, mirroring the
	// interpreter's factGate discipline: any HFI state write or mapping
	// change invalidates it wholesale.
	gateHfiGen uint64
	gateMapGen uint64
	gateOK     bool
	winOK      []bool
	blockOK    []bool

	resetSeq uint64

	// Counters (cumulative; TakeCounters returns harvest deltas).
	promotions   uint64
	tieredInstrs uint64
	interpInstrs uint64
	hPromotions  uint64
	hTiered      uint64
	hInterp      uint64
}

// NewEngine wires an engine over ip's machine. low may be nil (no facts,
// shape mismatch): the engine then delegates every run to the interpreter.
func NewEngine(ip *cpu.Interp, low *Lowered) *Engine {
	e := &Engine{ip: ip, m: ip.M, low: low, PromoteAfter: DefaultPromoteAfter}
	if low != nil {
		e.counts = make([]uint32, len(low.blocks))
		e.promoted = make([]bool, len(low.blocks))
		e.winOK = make([]bool, len(low.windows))
		e.blockOK = make([]bool, len(low.blocks))
		e.resetSeq = ip.M.ResetSeq()
	}
	return e
}

// runBlock status codes.
const (
	stDone = iota
	stTerminal
	stBail
)

// Run executes from the machine's current PC until a stop condition or
// until limit instructions retire (0 = no limit). Configurations the fused
// runner cannot reproduce bit-exactly delegate wholesale: no lowering, the
// interpreter's fast paths or fact trust disabled, a memory hook installed
// (the fused path has no per-access observation point by design — hooked
// runs are measurement runs), or a cost model differing from the one the
// static charges were expanded from.
func (e *Engine) Run(limit uint64) cpu.RunResult {
	ip, m, low := e.ip, e.m, e.low
	if low == nil || ip.NoFastPath || !ip.TrustFacts || m.MemHook != nil || ip.Cost != low.Cost {
		return ip.Run(limit)
	}
	if rs := m.ResetSeq(); rs != e.resetSeq {
		e.resetSeq = rs
		e.demote()
	}
	remaining := limit
	if limit == 0 {
		remaining = ^uint64(0)
	}
	for {
		if remaining == 0 {
			ip.SyncClock()
			return cpu.RunResult{Reason: cpu.StopLimit}
		}
		off := m.PC - low.base
		if off >= low.size || off%isa.InstrBytes != 0 {
			// Outside the lowered program (springboard, HostReturn checks,
			// misaligned PC): interpret in fixed chunks. The interpreter
			// handles stops and faults; StopLimit consumes exactly the
			// requested iterations.
			if res, done := e.seg(outsideChunk, &remaining); done {
				return res
			}
			continue
		}
		idx := int(off / isa.InstrBytes)
		bi := low.blockIdx[idx]
		b := &low.blocks[bi]
		if idx == b.Start && len(b.Ops) > 0 {
			if e.promoted[bi] {
				if !e.gateOK || e.gateHfiGen != m.HFI.Gen || e.gateMapGen != m.AS.Gen() {
					e.gateSync()
				}
				if e.blockOK[bi] && remaining >= uint64(b.Span) {
					used, res, st := e.runChain(b, remaining)
					e.tieredInstrs += used
					remaining -= used
					switch st {
					case stTerminal:
						return res
					case stDone:
						continue
					}
					// stBail: the PC now sits on the bailing instruction;
					// hand the rest of the block to the interpreter below.
					if remaining == 0 {
						ip.SyncClock()
						return cpu.RunResult{Reason: cpu.StopLimit}
					}
					idx = int((m.PC - low.base) / isa.InstrBytes)
					bi = low.blockIdx[idx]
					b = &low.blocks[bi]
				}
			} else {
				e.counts[bi]++
				if e.counts[bi] >= e.PromoteAfter {
					e.promoted[bi] = true
					e.promotions++
				}
			}
		}
		if res, done := e.seg(uint64(b.End-idx), &remaining); done {
			return res
		}
	}
}

// seg runs one interpreter segment of at most steps iterations (clamped to
// the remaining budget), returning (res, true) on any stop other than an
// in-budget StopLimit.
func (e *Engine) seg(steps uint64, remaining *uint64) (cpu.RunResult, bool) {
	if steps > *remaining {
		steps = *remaining
	}
	before := e.m.Instret
	res := e.ip.SegmentRun(steps)
	e.interpInstrs += e.m.Instret - before
	if res.Reason != cpu.StopLimit {
		return res, true
	}
	*remaining -= steps
	return cpu.RunResult{}, false
}

// runChain executes one promoted block's fused prefix, then chains: while
// the successor PC is itself the leader of a promoted, gate-valid block
// within budget, execution stays in the fused runner — the outer dispatch
// (index recomputation, generation checks, result marshalling) is paid once
// per chain instead of once per block. Chaining is sound because no fusable
// operation can change the HFI generation, the mapping generation, or the
// promotion state: the gate verdicts checked at chain entry hold for the
// chain's lifetime. It returns the instructions retired (fused blocks
// cannot take the non-retiring fetch/exec fault paths) and a status: stDone
// (chain ended at a non-chainable PC), stBail (a window compare failed
// before any side effect — PC is the unexecuted instruction), or stTerminal
// (an ExplicitEA fault went unhandled; res is final).
func (e *Engine) runChain(b *Block, budget uint64) (used uint64, res cpu.RunResult, st int) {
	ip, m, low := e.ip, e.m, e.low
	regs := &m.Regs
	hfiOn := m.HFI.Enabled

chain:
	pcNext := b.NextPC
	ops := b.Ops
	for i := 0; i < len(ops); i++ {
		f := &ops[i]
		switch f.kind {
		case kMovImm:
			regs[f.rd] = f.imm
		case kMov:
			regs[f.rd] = regs[f.rs1]
		case kAddImm:
			v := regs[f.rs1] + f.imm
			if f.w32 {
				v = uint64(uint32(v))
			}
			regs[f.rd] = v
		case kAddReg:
			v := regs[f.rs1] + regs[f.rs2]
			if f.w32 {
				v = uint64(uint32(v))
			}
			regs[f.rd] = v
		case kAluImm:
			v := aluEval(f.op, regs[f.rs1], f.imm)
			if f.w32 {
				v = uint64(uint32(v))
			}
			regs[f.rd] = v
		case kAluReg:
			v := aluEval(f.op, regs[f.rs1], regs[f.rs2])
			if f.w32 {
				v = uint64(uint32(v))
			}
			regs[f.rd] = v

		case kLoad, kStore:
			base := regs[f.rs1]
			var idx uint64
			if !f.idxNone {
				idx = regs[f.rs2]
			}
			addr := isa.PlainEA(base, idx, f.scale, f.disp)
			// The same hardened compare the interpreter's elision path
			// applies; anything outside the proven window bails with zero
			// side effects and the interpreter runs the full checks.
			if addr < f.winLo || addr >= f.winHi || uint64(f.size) > f.winHi-addr {
				n, bres, bst := e.bail(b, f)
				return used + n, bres, bst
			}
			if hfiOn {
				m.HFI.ChecksData++
			}
			m.FactElisions++
			if f.kind == kStore {
				m.Mem().Write(addr, f.size, regs[f.rs3])
				ip.ChargeMemAt(addr, true)
			} else {
				regs[f.rd] = cpu.SignExtend(m.Mem().Read(addr, f.size), f.size, f.signExt)
				ip.ChargeMemAt(addr, false)
			}

		case kHLoad, kHStore:
			write := f.kind == kHStore
			var idx uint64
			if !f.idxNone {
				idx = regs[f.rs2]
			}
			addr, flt := m.HFI.ExplicitEA(int(f.hreg), idx, f.scale, f.disp, f.size, write)
			if flt != nil {
				n, fres, fst := e.fusedFault(b, f, addr, flt)
				return used + n, fres, fst
			}
			// The gate re-validated the region span against the page
			// table, so the MMU lookup is elided — factElideHfi's exact
			// contract.
			m.FactElisions++
			if write {
				m.Mem().Write(addr, f.size, regs[f.rs3])
				ip.ChargeMemAt(addr, true)
			} else {
				regs[f.rd] = cpu.SignExtend(m.Mem().Read(addr, f.size), f.size, f.signExt)
				ip.ChargeMemAt(addr, false)
			}

		case kBr:
			cmp := f.imm
			if !f.brImm {
				cmp = regs[f.rs2]
			}
			if f.cond.Eval(regs[f.rs1], cmp) {
				pcNext = f.target
			}
		case kJmp:
			pcNext = f.target
		case kStepBr:
			v := regs[f.rs1] + f.imm
			if f.w32 {
				v = uint64(uint32(v))
			}
			regs[f.rd] = v
			cmp := uint64(f.disp)
			if !f.brImm {
				cmp = regs[f.rs3]
			}
			if f.cond.Eval(regs[f.rs2], cmp) {
				pcNext = f.target
			}
		}
	}
	m.Instret += uint64(b.Span)
	if hfiOn {
		// The interpreter's per-fetch exec check counts once per
		// instruction; the gate hoisted the check itself to block entry
		// but the observable counter stays identical.
		m.HFI.ChecksCode += uint64(b.Span)
	}
	ip.ChargeMilli(b.StaticCost)
	m.PC = pcNext
	used += uint64(b.Span)
	budget -= uint64(b.Span)

	// Chain: follow the control transfer directly into the next promoted
	// block. (A promoted block always has fused ops, so no len check.)
	if off := pcNext - low.base; off < low.size && off%isa.InstrBytes == 0 {
		idx := int(off / isa.InstrBytes)
		bi := low.blockIdx[idx]
		nb := &low.blocks[bi]
		if idx == nb.Start && e.promoted[bi] && e.blockOK[bi] && budget >= uint64(nb.Span) {
			b = nb
			goto chain
		}
	}
	return used, cpu.RunResult{}, stDone
}

// bail retires exactly the fused ops (and folded nop/fence) before f,
// bills exactly their static charge (memory charges already landed in
// program order), and parks the PC on f's source instruction for the
// interpreter. The bailing instruction itself has had no effect: no
// counter, no charge, no access.
func (e *Engine) bail(b *Block, f *fused) (uint64, cpu.RunResult, int) {
	n := uint64(f.src - int32(b.Start))
	m := e.m
	m.Instret += n
	if m.HFI.Enabled {
		m.HFI.ChecksCode += n
	}
	e.ip.ChargeMilli(f.costBefore)
	m.PC = e.low.base + uint64(f.src)*isa.InstrBytes
	return n, cpu.RunResult{}, stBail
}

// fusedFault routes an ExplicitEA fault raised inside a fused block
// through the interpreter's fault path. ExplicitEA has already mutated the
// HFI state (fault record, sandbox disable) exactly as it would under the
// interpreter, and the faulting instruction retires with no charge and no
// access — the dispatch loop's behavior to the letter.
func (e *Engine) fusedFault(b *Block, f *fused, addr uint64, flt *hfi.Fault) (uint64, cpu.RunResult, int) {
	n := uint64(f.src-int32(b.Start)) + 1 // the faulting instruction retires too
	m := e.m
	m.Instret += n
	if m.HFI.Enabled {
		m.HFI.ChecksCode += n
	}
	e.ip.ChargeMilli(f.costBefore)
	pc := e.low.base + uint64(f.src)*isa.InstrBytes
	res, ok := e.ip.RaiseAt(pc, addr, flt, false)
	if !ok {
		return n, res, stTerminal
	}
	return n, cpu.RunResult{}, stDone // resumed; RaiseAt set the PC
}

// gateSync re-validates every fact claim the lowering relies on against
// the live machine, then folds the results into a per-block verdict. The
// mirror of cpu's factWindowValid / factElideHfi, computed once per
// HFI/mapping generation instead of per access.
func (e *Engine) gateSync() {
	m, low := e.m, e.low
	e.gateHfiGen, e.gateMapGen, e.gateOK = m.HFI.Gen, m.AS.Gen(), true
	for i, w := range low.windows {
		ok := w.Hi > w.Lo && m.AS.CheckRange(w.Lo, w.Hi-w.Lo, kernel.ProtRead|kernel.ProtWrite)
		if ok && m.HFI.Enabled {
			r, wr, uniform := m.HFI.DataPageDecision(w.Lo, w.Hi-w.Lo)
			if !uniform || !r || !wr {
				ok = false
			}
		}
		e.winOK[i] = ok
	}
	var regOK [hfi.NumExplicitRegions]bool
	for h := 0; h < hfi.NumExplicitRegions; h++ {
		r := &m.HFI.Bank.Expl[h]
		regOK[h] = r.Valid && r.Bound > 0 && m.AS.CheckRange(r.Base, r.Bound, kernel.ProtRead|kernel.ProtWrite)
	}
	// One whole-program exec decision stands in for the per-fetch check
	// inside fused blocks; non-uniform or denied means no fusing at all
	// (the interpreter raises the architectural fault at the right PC).
	execOK := true
	if m.HFI.Enabled {
		ok, uniform := m.HFI.ExecPageDecision(low.base, low.size)
		execOK = ok && uniform
	}
	for bi := range low.blocks {
		b := &low.blocks[bi]
		ok := execOK
		if ok {
			for _, w := range b.Wins {
				if !e.winOK[w] {
					ok = false
					break
				}
			}
		}
		if ok && b.HRegs != 0 {
			for h := 0; h < hfi.NumExplicitRegions; h++ {
				if b.HRegs&(1<<h) != 0 && !regOK[h] {
					ok = false
					break
				}
			}
		}
		e.blockOK[bi] = ok
	}
}

// demote clears all promotion state; called when the machine was Reset
// under the engine (guest context switch).
func (e *Engine) demote() {
	for i := range e.counts {
		e.counts[i] = 0
	}
	for i := range e.promoted {
		e.promoted[i] = false
	}
	e.gateOK = false
}

// aluEval evaluates the generic fused ALU operations (OpAdd has dedicated
// kinds). Every op here is total — no traps.
func aluEval(op isa.Op, a, b uint64) uint64 {
	switch op {
	case isa.OpSub:
		return a - b
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpShl:
		return a << (b & 63)
	case isa.OpShr:
		return a >> (b & 63)
	case isa.OpSar:
		return uint64(int64(a) >> (b & 63))
	case isa.OpMul:
		return a * b
	case isa.OpNot:
		return ^a
	case isa.OpNeg:
		return -a
	}
	return 0
}

// Promoted returns the number of currently promoted blocks.
func (e *Engine) Promoted() int {
	n := 0
	for _, p := range e.promoted {
		if p {
			n++
		}
	}
	return n
}

// Counters returns the cumulative promotion count and the
// tiered-vs-interpreted retirement split.
func (e *Engine) Counters() (promotions, tieredInstrs, interpInstrs uint64) {
	return e.promotions, e.tieredInstrs, e.interpInstrs
}

// TakeCounters returns the counter deltas since the previous call — the
// harvest interface the FaaS host drains after each request.
func (e *Engine) TakeCounters() (promotions, tieredInstrs, interpInstrs uint64) {
	promotions = e.promotions - e.hPromotions
	tieredInstrs = e.tieredInstrs - e.hTiered
	interpInstrs = e.interpInstrs - e.hInterp
	e.hPromotions, e.hTiered, e.hInterp = e.promotions, e.tieredInstrs, e.interpInstrs
	return
}

// Lowering returns the shared lowering artifact (nil when facts were
// absent).
func (e *Engine) Lowering() *Lowered { return e.low }

// HasLowering reports whether the engine carries a lowering at all — the
// precondition for the LoweringRot chaos seam (there is no gate cache to
// rot otherwise).
func (e *Engine) HasLowering() bool { return e.low != nil }

// rotGenSkew mirrors cpu's stale-generation distance: forged gate tags sit
// far enough ahead that they can never match a live generation (the rotted
// verdicts are never consumed — any fused entry re-syncs the gate first),
// while staying detectable forever.
const rotGenSkew = 1 << 32

// PlantGateRot is the chaos seam for FaultLoweringRot: it corrupts the
// engine's cached gate — the hoisted per-block safety verdicts the fused
// runner trusts between generation changes. The pick'th cached block
// verdict is flipped; live rot additionally forges the gate's generation
// tags ahead of both sources, claiming verdicts for generations that have
// not happened (AuditGate must catch the impossible tags). Dead rot
// demotes the gate instead (gateOK=false), so the flipped verdict is
// recomputed by gateSync before any fused block could trust it — rot in
// dead state, undetectable and benign by construction. The shared
// immutable Lowered artifact is never touched: rot is per-engine state,
// with no cross-instance blast radius.
func (e *Engine) PlantGateRot(live bool, pick uint64) {
	if e.low == nil || len(e.blockOK) == 0 {
		return
	}
	bi := int(pick % uint64(len(e.blockOK)))
	e.blockOK[bi] = !e.blockOK[bi]
	if live {
		e.gateOK = true
		e.gateHfiGen = e.m.HFI.Gen + rotGenSkew
		e.gateMapGen = e.m.AS.Gen() + rotGenSkew
	} else {
		e.gateOK = false
	}
}

// AuditGate is the generation cross-audit over the tier gate: a live gate
// whose tags are not auditable against their sources (tag ahead of the
// current generation) is impossible state — the residue of rotted
// verdicts claiming future freshness. Dead gates (gateOK=false) hold no
// trusted verdicts and pass vacuously; gateSync recomputes them before
// the fused runner consumes anything. Engines without a lowering have no
// gate and pass vacuously too.
func (e *Engine) AuditGate() bool {
	if e.low == nil || !e.gateOK {
		return true
	}
	return e.m.HFI.AuditTag(e.gateHfiGen) && e.m.AS.AuditTag(e.gateMapGen)
}

// Invalidate is the recovery path for detected gate rot: demote every
// block (promotion is re-earned from a clean slate) and clear all cached
// verdicts, forcing the next fused entry through a full gateSync
// re-derivation — the "demote + re-lower the affected blocks" contract.
// The shared Lowered artifact is immutable and needs no rebuilding; what
// is re-derived is every per-engine conclusion drawn from it.
func (e *Engine) Invalidate() {
	e.demote()
	for i := range e.winOK {
		e.winOK[i] = false
	}
	for i := range e.blockOK {
		e.blockOK[i] = false
	}
	e.gateHfiGen, e.gateMapGen = 0, 0
}

package httpfront

import (
	"encoding/json"
	"testing"

	"hfi/internal/host"
	"hfi/internal/stats"
)

// TestStatszV1PinnedKeys pins the wire layout of StatszV1: a renamed or
// dropped JSON key is a schema break and must bump StatszSchemaVersion.
// The test serializes a fully-populated document and asserts every key it
// promises is present under its exact name.
func TestStatszV1PinnedKeys(t *testing.T) {
	doc := StatszV1{
		SchemaVersion: StatszSchemaVersion,
		Role:          RoleRouter,
		Shard:         "shard-0",
		UptimeSeconds: 1.5,
		Draining:      true,
		Serve:         &stats.ServeSummary{},
		Tenants:       []stats.TenantSummary{{Tenant: "html"}},
		Counters:      &host.Counters{},
		Breakers:      []BreakerV1{{Tenant: "html", State: "open", Trips: 1}},
		Cluster: &ClusterStatszV1{
			Shards: []ShardInfoV1{{Name: "shard-0", Addr: "127.0.0.1:1", Healthy: true}},
		},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"schema_version", "role", "shard", "uptime_seconds", "draining",
		"serve", "tenants", "counters", "breakers", "cluster",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("StatszV1 missing pinned key %q: %s", key, raw)
		}
	}

	var cl map[string]json.RawMessage
	if err := json.Unmarshal(m["cluster"], &cl); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"shards", "routing_hits", "routing_misses", "routing_hit_rate",
		"hedges", "hedge_wins", "retries", "transport_errors",
		"migrations", "unroutable", "proxied",
	} {
		if _, ok := cl[key]; !ok {
			t.Errorf("ClusterStatszV1 missing pinned key %q: %s", key, m["cluster"])
		}
	}

	var shards []map[string]json.RawMessage
	if err := json.Unmarshal(cl["shards"], &shards); err != nil || len(shards) != 1 {
		t.Fatalf("cluster shards decode: %v", err)
	}
	for _, key := range []string{
		"name", "addr", "healthy", "draining", "degraded", "placements",
		"inflight", "attempts", "delivered", "transport_errors", "admitted",
	} {
		if _, ok := shards[0][key]; !ok {
			t.Errorf("ShardInfoV1 missing pinned key %q: %s", key, cl["shards"])
		}
	}

	var br []map[string]json.RawMessage
	if err := json.Unmarshal(m["breakers"], &br); err != nil || len(br) != 1 {
		t.Fatalf("breakers decode: %v", err)
	}
	for _, key := range []string{"tenant", "state", "trips"} {
		if _, ok := br[0][key]; !ok {
			t.Errorf("BreakerV1 missing pinned key %q", key)
		}
	}
}

// TestServeSummaryPinnedKeys pins the snake_case keys of the embedded
// serve section — the fields the router's scraper and the baseline gates
// read by name.
func TestServeSummaryPinnedKeys(t *testing.T) {
	raw, err := json.Marshal(stats.ServeSummary{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"ok", "timeouts", "faults", "shed", "rejected", "canceled",
		"mean_ns", "p50_ns", "p99_ns", "p999_ns", "max_ns",
		"throughput_rps", "shed_rate",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("ServeSummary missing pinned key %q: %s", key, raw)
		}
	}
}

// TestErrorEnvelopePinnedShape pins the envelope wire shape: the required
// outcome key, the optional keys under their exact names, and omitempty on
// everything a minimal envelope leaves out.
func TestErrorEnvelopePinnedShape(t *testing.T) {
	full := ErrorEnvelope{
		Outcome: "shed", RetryAfterMS: 1000, RequestID: "r-1",
		Shard: "shard-0", Cause: "breaker_open", Error: "queue full",
	}
	raw, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"outcome", "retry_after_ms", "request_id", "shard", "cause", "error",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("ErrorEnvelope missing pinned key %q: %s", key, raw)
		}
	}

	min, err := json.Marshal(ErrorEnvelope{Outcome: "fault"})
	if err != nil {
		t.Fatal(err)
	}
	if string(min) != `{"outcome":"fault"}` {
		t.Errorf("minimal envelope = %s, want only the outcome key", min)
	}
}

// TestEnvelopeVocabularyClosed: statusOutcome lands inside EnvelopeOutcomes
// for every status (including the default arm), the vocabulary holds no
// duplicates, and each host-derived entry matches a stats.Outcome name —
// except "closed", the documented pre-accounting refusal.
func TestEnvelopeVocabularyClosed(t *testing.T) {
	vocab := make(map[string]bool)
	for _, o := range EnvelopeOutcomes {
		if vocab[o] {
			t.Errorf("duplicate envelope outcome %q", o)
		}
		vocab[o] = true
	}
	statuses := []host.Status{
		host.StatusOK, host.StatusTimeout, host.StatusShed, host.StatusFault,
		host.StatusRejected, host.StatusClosed, host.StatusCanceled,
		host.Status(250), // unknown status folds into the default arm
	}
	for _, st := range statuses {
		if o := statusOutcome(st); !vocab[o] {
			t.Errorf("statusOutcome(%d) = %q escapes the closed vocabulary", st, o)
		}
	}

	// The host-derived half of the vocabulary must track stats.Outcome's
	// serialized names so fleet dashboards join on one string set.
	statsNames := make(map[string]bool)
	for o := stats.OutcomeOK; o <= stats.OutcomeCanceled; o++ {
		statsNames[o.String()] = true
	}
	for _, o := range []string{"timeout", "shed", "fault", "rejected", "canceled"} {
		if !statsNames[o] {
			t.Errorf("envelope outcome %q has no stats.Outcome counterpart", o)
		}
	}
	if statsNames["closed"] {
		t.Error(`"closed" grew a stats.Outcome — drop the envelope special case`)
	}
}

package cpu

import (
	"testing"

	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// buildSumLoop builds a program that sums 0..n-1 into R1 and halts.
func buildSumLoop(base uint64, n int64) *isa.Program {
	b := isa.NewBuilder(base)
	b.MovImm(isa.R0, 0) // i
	b.MovImm(isa.R1, 0) // sum
	b.Label("loop")
	b.Add(isa.R1, isa.R1, isa.R0)
	b.AddImm(isa.R0, isa.R0, 1)
	b.BrImm(isa.CondLT, isa.R0, n, "loop")
	b.Halt()
	return b.Build()
}

func TestInterpSumLoop(t *testing.T) {
	m := NewMachine()
	m.MustLoadProgram(buildSumLoop(0x1000, 100))
	m.PC = 0x1000
	res := NewInterp(m).Run(0)
	if res.Reason != StopHalt {
		t.Fatalf("stop reason = %v, want halt", res.Reason)
	}
	if got, want := m.Regs[isa.R1], uint64(4950); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestCoreSumLoop(t *testing.T) {
	m := NewMachine()
	m.MustLoadProgram(buildSumLoop(0x1000, 100))
	m.PC = 0x1000
	c := NewCore(m)
	res := c.Run(1_000_000)
	if res.Reason != StopHalt {
		t.Fatalf("stop reason = %v, want halt", res.Reason)
	}
	if got, want := m.Regs[isa.R1], uint64(4950); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if c.Cycles() == 0 || c.Cycles() > 100_000 {
		t.Fatalf("implausible cycle count %d", c.Cycles())
	}
}

// buildMemKernel stores values to an array then sums them back, exercising
// loads, stores, forwarding and addressing.
func buildMemKernel(base, buf uint64, n int64) *isa.Program {
	b := isa.NewBuilder(base)
	b.MovImm(isa.R0, 0)
	b.MovImm(isa.R2, int64(buf))
	b.Label("fill")
	b.MulImm(isa.R3, isa.R0, 7)
	b.Store(8, isa.R2, isa.R0, 8, 0, isa.R3)
	b.AddImm(isa.R0, isa.R0, 1)
	b.BrImm(isa.CondLT, isa.R0, n, "fill")
	b.MovImm(isa.R0, 0)
	b.MovImm(isa.R1, 0)
	b.Label("sum")
	b.Load(8, isa.R3, isa.R2, isa.R0, 8, 0)
	b.Add(isa.R1, isa.R1, isa.R3)
	b.AddImm(isa.R0, isa.R0, 1)
	b.BrImm(isa.CondLT, isa.R0, n, "sum")
	b.Halt()
	return b.Build()
}

func setupMemKernel(t *testing.T) (*Machine, uint64) {
	t.Helper()
	m := NewMachine()
	const buf = 0x100000
	if err := m.AS.MapFixed(buf, 0x10000, kernel.ProtRead|kernel.ProtWrite); err != nil {
		t.Fatal(err)
	}
	m.MustLoadProgram(buildMemKernel(0x1000, buf, 64))
	m.PC = 0x1000
	// sum of 7*i for i in 0..63 = 7 * 2016
	return m, 7 * 2016
}

func TestInterpMemKernel(t *testing.T) {
	m, want := setupMemKernel(t)
	res := NewInterp(m).Run(0)
	if res.Reason != StopHalt {
		t.Fatalf("stop reason = %v (pc=%#x)", res.Reason, m.PC)
	}
	if m.Regs[isa.R1] != want {
		t.Fatalf("sum = %d, want %d", m.Regs[isa.R1], want)
	}
}

func TestCoreMemKernel(t *testing.T) {
	m, want := setupMemKernel(t)
	res := NewCore(m).Run(1_000_000)
	if res.Reason != StopHalt {
		t.Fatalf("stop reason = %v (pc=%#x)", res.Reason, m.PC)
	}
	if m.Regs[isa.R1] != want {
		t.Fatalf("sum = %d, want %d", m.Regs[isa.R1], want)
	}
}

// buildCallKernel exercises call/ret and the stack.
func buildCallKernel(base, stack uint64) *isa.Program {
	b := isa.NewBuilder(base)
	b.MovImm(isa.SP, int64(stack))
	b.MovImm(isa.R1, 5)
	b.Call("double")
	b.Call("double")
	b.Halt()
	b.Label("double")
	b.Add(isa.R1, isa.R1, isa.R1)
	b.Ret()
	return b.Build()
}

func TestEnginesCallRet(t *testing.T) {
	for _, eng := range []string{"interp", "core"} {
		t.Run(eng, func(t *testing.T) {
			m := NewMachine()
			const stackTop = 0x200000
			if err := m.AS.MapFixed(stackTop-0x1000, 0x1000, kernel.ProtRead|kernel.ProtWrite); err != nil {
				t.Fatal(err)
			}
			m.MustLoadProgram(buildCallKernel(0x1000, stackTop))
			m.PC = 0x1000
			var res RunResult
			if eng == "interp" {
				res = NewInterp(m).Run(0)
			} else {
				res = NewCore(m).Run(1_000_000)
			}
			if res.Reason != StopHalt {
				t.Fatalf("stop reason = %v", res.Reason)
			}
			if m.Regs[isa.R1] != 20 {
				t.Fatalf("R1 = %d, want 20", m.Regs[isa.R1])
			}
		})
	}
}

// TestEnginesAgree runs a mixed kernel on both engines and checks identical
// architectural results.
func TestEnginesAgree(t *testing.T) {
	build := func() (*Machine, *isa.Program) {
		m := NewMachine()
		const buf = 0x300000
		if err := m.AS.MapFixed(buf, 0x10000, kernel.ProtRead|kernel.ProtWrite); err != nil {
			t.Fatal(err)
		}
		b := isa.NewBuilder(0x1000)
		b.MovImm(isa.R0, 0)
		b.MovImm(isa.R1, 1)
		b.MovImm(isa.R4, int64(buf))
		b.Label("loop")
		b.MulImm(isa.R1, isa.R1, 13)
		b.AddImm(isa.R1, isa.R1, 7)
		b.AndImm(isa.R2, isa.R1, 0xfff)
		b.Store(4, isa.R4, isa.R2, 1, 0, isa.R1)
		b.Load(4, isa.R3, isa.R4, isa.R2, 1, 0)
		b.Xor(isa.R5, isa.R5, isa.R3)
		b.AddImm(isa.R0, isa.R0, 1)
		b.BrImm(isa.CondLT, isa.R0, 500, "loop")
		b.Halt()
		p := b.Build()
		m.MustLoadProgram(p)
		m.PC = 0x1000
		return m, p
	}

	m1, _ := build()
	NewInterp(m1).Run(0)
	m2, _ := build()
	NewCore(m2).Run(10_000_000)

	if m1.Regs != m2.Regs {
		t.Fatalf("architectural registers diverge:\ninterp: %v\ncore:   %v", m1.Regs, m2.Regs)
	}
}

// TestHFIImplicitDataRegion checks that ordinary loads trap outside the
// configured data region and pass inside it, on both engines.
func TestHFIImplicitDataRegion(t *testing.T) {
	for _, eng := range []string{"interp", "core"} {
		t.Run(eng, func(t *testing.T) {
			m := NewMachine()
			const heap = 0x400000 // 4 MiB aligned region of 64 KiB
			if err := m.AS.MapFixed(heap, 0x20000, kernel.ProtRead|kernel.ProtWrite); err != nil {
				t.Fatal(err)
			}

			b := isa.NewBuilder(0x1000)
			b.Load(8, isa.R1, isa.R2, isa.RegNone, 1, 0) // R2 holds address
			b.Halt()
			p := b.Build()
			m.MustLoadProgram(p)

			// Configure HFI: code region over the program, data region over
			// [heap, heap+64K).
			if f := m.HFI.SetCodeRegion(0, hfi.ImplicitRegion{
				BasePrefix: 0x1000 &^ 0xfff, LSBMask: 0xfff, Exec: true,
			}); f != nil {
				t.Fatal(f)
			}
			if f := m.HFI.SetDataRegion(0, hfi.ImplicitRegion{
				BasePrefix: heap, LSBMask: 0xffff, Read: true, Write: true,
			}); f != nil {
				t.Fatal(f)
			}
			if _, f := m.HFI.Enter(hfi.Config{Hybrid: true}); f != nil {
				t.Fatal(f)
			}

			run := func() RunResult {
				if eng == "interp" {
					return NewInterp(m).Run(0)
				}
				return NewCore(m).Run(100_000)
			}

			// In-bounds access succeeds.
			m.PC = 0x1000
			m.Regs[isa.R2] = heap + 0x100
			if res := run(); res.Reason != StopHalt {
				t.Fatalf("in-bounds: stop = %v, want halt", res.Reason)
			}

			// Out-of-bounds access faults with the data-bounds reason.
			// (HFI is still enabled: halting does not exit the sandbox.)
			m.PC = 0x1000
			m.Regs[isa.R2] = heap + 0x10000 // just past the region
			res := run()
			if res.Reason != StopFault || res.Fault == nil {
				t.Fatalf("out-of-bounds: stop = %v fault=%v, want HFI fault", res.Reason, res.Fault)
			}
			if res.Fault.Reason != hfi.FaultDataBounds {
				t.Fatalf("fault reason = %v, want data-bounds", res.Fault.Reason)
			}
			if reason, _ := m.HFI.ReadMSR(); reason != hfi.FaultDataBounds {
				t.Fatalf("MSR = %v, want data-bounds", reason)
			}
			if m.HFI.Enabled {
				t.Fatal("HFI still enabled after fault")
			}
		})
	}
}

// TestHFIExplicitRegion checks hmov semantics on both engines.
func TestHFIExplicitRegion(t *testing.T) {
	for _, eng := range []string{"interp", "core"} {
		t.Run(eng, func(t *testing.T) {
			m := NewMachine()
			const heap = 0x10000 // 64 KiB aligned
			if err := m.AS.MapFixed(heap, 0x20000, kernel.ProtRead|kernel.ProtWrite); err != nil {
				t.Fatal(err)
			}
			m.Mem().Write(heap+0x80, 8, 0xdeadbeef)

			b := isa.NewBuilder(0x1000)
			b.HLoad(0, 8, isa.R1, isa.R2, 1, 0) // hmov0: R1 <- region0[R2]
			b.Halt()
			m.MustLoadProgram(b.Build())

			if f := m.HFI.SetCodeRegion(0, hfi.ImplicitRegion{
				BasePrefix: 0x1000, LSBMask: 0xfff, Exec: true,
			}); f != nil {
				t.Fatal(f)
			}
			if f := m.HFI.SetExplicitRegion(0, hfi.ExplicitRegion{
				Base: heap, Bound: 0x10000, Read: true, Write: true, Large: true,
			}); f != nil {
				t.Fatal(f)
			}
			if _, f := m.HFI.Enter(hfi.Config{Hybrid: true}); f != nil {
				t.Fatal(f)
			}

			run := func() RunResult {
				if eng == "interp" {
					return NewInterp(m).Run(0)
				}
				return NewCore(m).Run(100_000)
			}

			m.PC = 0x1000
			m.Regs[isa.R2] = 0x80
			if res := run(); res.Reason != StopHalt {
				t.Fatalf("stop = %v, want halt", res.Reason)
			}
			if m.Regs[isa.R1] != 0xdeadbeef {
				t.Fatalf("hmov load = %#x, want 0xdeadbeef", m.Regs[isa.R1])
			}

			// Out of bounds offset traps. (Still in the sandbox.)
			m.PC = 0x1000
			m.Regs[isa.R2] = 0x10000
			res := run()
			if res.Reason != StopFault || res.Fault == nil || res.Fault.Reason != hfi.FaultExplicitBounds {
				t.Fatalf("oob hmov: res=%+v", res)
			}

			// Negative index traps.
			if _, f := m.HFI.Reenter(); f != nil {
				t.Fatal(f)
			}
			m.PC = 0x1000
			m.Regs[isa.R2] = ^uint64(0) // -1
			res = run()
			if res.Reason != StopFault || res.Fault == nil || res.Fault.Reason != hfi.FaultExplicitNegative {
				t.Fatalf("negative hmov: res=%+v", res)
			}
		})
	}
}

// TestGuardPageFault checks that an access to a PROT_NONE guard region
// raises a page fault (the MMU path Wasm guard pages rely on).
func TestGuardPageFault(t *testing.T) {
	m := NewMachine()
	const heap = 0x500000
	if err := m.AS.MapFixed(heap, 0x1000, kernel.ProtRead|kernel.ProtWrite); err != nil {
		t.Fatal(err)
	}
	if err := m.AS.MapFixed(heap+0x1000, 0x1000, kernel.ProtNone); err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder(0x1000)
	b.Load(8, isa.R1, isa.R2, isa.RegNone, 1, 0)
	b.Halt()
	m.MustLoadProgram(b.Build())
	m.PC = 0x1000
	m.Regs[isa.R2] = heap + 0x1000
	res := NewInterp(m).Run(0)
	if res.Reason != StopFault || !res.PageFault {
		t.Fatalf("res=%+v, want page fault", res)
	}
}

// TestSyscallInterposition checks native-sandbox syscall redirection to the
// exit handler with the MSR recording the syscall number.
func TestSyscallInterposition(t *testing.T) {
	for _, eng := range []string{"interp", "core"} {
		t.Run(eng, func(t *testing.T) {
			m := NewMachine()
			b := isa.NewBuilder(0x1000)
			b.MovImm(isa.R0, kernel.SysGetTime)
			b.Syscall()
			b.Halt() // skipped: syscall redirects to the handler
			b.Label("handler")
			b.MovImm(isa.R7, 42)
			b.Halt()
			p := b.Build()
			m.MustLoadProgram(p)

			if f := m.HFI.SetCodeRegion(0, hfi.ImplicitRegion{
				BasePrefix: 0x1000, LSBMask: 0xfff, Exec: true,
			}); f != nil {
				t.Fatal(f)
			}
			if _, f := m.HFI.Enter(hfi.Config{ExitHandler: p.Entry("handler")}); f != nil {
				t.Fatal(f)
			}
			m.PC = 0x1000
			var res RunResult
			if eng == "interp" {
				res = NewInterp(m).Run(0)
			} else {
				res = NewCore(m).Run(100_000)
			}
			if res.Reason != StopHalt {
				t.Fatalf("stop = %v, want halt", res.Reason)
			}
			if m.Regs[isa.R7] != 42 {
				t.Fatal("exit handler did not run")
			}
			reason, info := m.HFI.ReadMSR()
			if reason != hfi.ExitSyscall || info != kernel.SysGetTime {
				t.Fatalf("MSR = %v/%d, want syscall/%d", reason, info, kernel.SysGetTime)
			}
			if m.HFI.Enabled {
				t.Fatal("HFI should be disabled after syscall exit")
			}
		})
	}
}

package sfi

import (
	"testing"

	"hfi/internal/isa"
)

func TestParseScheme(t *testing.T) {
	for _, name := range []string{"none", "guardpages", "boundscheck", "masking", "hfi"} {
		s, err := ParseScheme(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.String() != name {
			t.Fatalf("roundtrip %s -> %s", name, s)
		}
	}
	if _, err := ParseScheme("mpk"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSchemeProperties(t *testing.T) {
	if HFI.ExtraInstrsPerAccess() != 0 || len(HFI.ReservedRegs()) != 0 {
		t.Fatal("HFI must add no instructions and reserve no registers")
	}
	if !HFI.SpectreSafe() || GuardPages.SpectreSafe() || BoundsCheck.SpectreSafe() {
		t.Fatal("only HFI's checks bind speculation")
	}
	if Masking.PreciseTraps() {
		t.Fatal("masking wraps silently; it cannot satisfy Wasm trap semantics")
	}
	if !GuardPages.NeedsGuardReservation() || BoundsCheck.NeedsGuardReservation() || HFI.NeedsGuardReservation() {
		t.Fatal("guard-reservation flags wrong")
	}
}

func TestEmitSequences(t *testing.T) {
	count := func(s Scheme) int {
		b := isa.NewBuilder(0)
		b.Label("__trap")
		EmitLoad(b, s, 4, isa.R0, isa.R1, 16, false, isa.R2, "__trap")
		EmitStore(b, s, 4, isa.R1, 16, isa.R0, isa.R2, "__trap")
		return b.Len()
	}
	if n := count(GuardPages); n != 2 {
		t.Fatalf("guard pages: %d instrs, want 2", n)
	}
	if n := count(BoundsCheck); n != 6 {
		t.Fatalf("bounds: %d instrs, want 6", n)
	}
	if n := count(Masking); n != 4 {
		t.Fatalf("masking: %d instrs, want 4", n)
	}
	if n := count(HFI); n != 2 {
		t.Fatalf("hfi: %d instrs, want 2", n)
	}
	// HFI emits hmov forms.
	b := isa.NewBuilder(0)
	EmitLoad(b, HFI, 8, isa.R0, isa.R1, 0, true, isa.RegNone, "")
	p := b.Build()
	if p.Instrs[0].Op != isa.OpHLoad || !p.Instrs[0].SignExt {
		t.Fatalf("hfi sign-extending load: %+v", p.Instrs[0])
	}
}

package mutation

import (
	"testing"

	"hfi/internal/sfi"
)

// TestMutationGate is the acceptance gate: across the corpus and all
// five schemes, at least 95% of injected unsafe mutants must be
// rejected statically, and every survivor must be proven harmless by
// the differential runtime — zero escapes, ever.
func TestMutationGate(t *testing.T) {
	opts := Options{Fast: testing.Short()}
	rep, err := Run(opts)
	if err != nil {
		t.Fatalf("mutation run: %v", err)
	}
	if rep.Total == 0 {
		t.Fatal("no mutants generated")
	}
	for _, e := range rep.Escapes {
		t.Errorf("ESCAPE: %s/%v %s @%d (%s): %s",
			e.Workload, e.Scheme, e.Operator, e.Index, e.Instr, e.Detail)
	}
	if rate := rep.KillRate(); rate < 0.95 {
		t.Errorf("static kill rate %.1f%% < 95%% (%d/%d unsafe mutants killed, %d harmless, %d equivalent)",
			rate*100, rep.Killed, rep.Unsafe(), rep.Harmless, rep.Equivalent)
		for _, r := range rep.Results {
			if r.Outcome == Harmless {
				t.Logf("harmless survivor: %s/%v %s @%d (%s): %s",
					r.Workload, r.Scheme, r.Operator, r.Index, r.Instr, r.Detail)
			}
		}
	}
	t.Logf("mutation: %d mutants (%d unsafe), %d killed statically (%.1f%%), %d harmless, %d equivalent",
		rep.Total, rep.Unsafe(), rep.Killed, rep.KillRate()*100, rep.Harmless, rep.Equivalent)
}

// TestFactOperatorsAuditKill pins the proof-artifact half of the fault
// model: every fact-corruption mutant — a widened resident interval, a
// forged residency bit, a fabricated domination claim — must be present in
// the sweep and rejected by verifier.AuditFacts before it ever runs. A
// corrupted artifact that reaches execution would have the runtime gates
// and the escape oracle as last lines, but the audit is required to kill
// 100% on its own.
func TestFactOperatorsAuditKill(t *testing.T) {
	rep, err := Run(Options{Fast: true})
	if err != nil {
		t.Fatalf("mutation run: %v", err)
	}
	factOps := map[string]int{
		"widen-fact-interval":  0,
		"forge-resident-fact":  0,
		"fake-dominated-check": 0,
	}
	for _, r := range rep.Results {
		if _, ok := factOps[r.Operator]; !ok {
			continue
		}
		factOps[r.Operator]++
		if r.Outcome != KilledStatic {
			t.Errorf("fact mutant survived the audit: %s/%v %s @%d (%s): outcome %v, %s",
				r.Workload, r.Scheme, r.Operator, r.Index, r.Instr, r.Outcome, r.Detail)
		}
	}
	for op, n := range factOps {
		if n == 0 {
			t.Errorf("no %s mutants generated", op)
		} else {
			t.Logf("%s: %d mutants, all audit-killed", op, n)
		}
	}
}

// TestOperatorsCoverEverySchemeMechanism checks the fault model touches
// each scheme's mediation at least once on a representative kernel:
// masking must see drop-mask sites, bounds checking nop-check sites,
// HFI swap-hld sites.
func TestOperatorsCoverEverySchemeMechanism(t *testing.T) {
	cases := []struct {
		scheme sfi.Scheme
		op     string
	}{
		{sfi.Masking, "drop-mask"},
		{sfi.BoundsCheck, "nop-check"},
		{sfi.HFI, "swap-hld"},
		{sfi.GuardPages, "widen-disp"},
		// The hostcall-boundary operators fire under every scheme (the
		// gate proof is scheme-independent); HFI is the representative.
		{sfi.HFI, "swap-hostcall-num"},
		{sfi.HFI, "corrupt-marshal-len"},
		{sfi.HFI, "skip-bounds-recheck"},
	}
	rep, err := Run(Options{Fast: true})
	if err != nil {
		t.Fatalf("mutation run: %v", err)
	}
	seen := map[[2]string]bool{}
	for _, r := range rep.Results {
		seen[[2]string{r.Scheme.String(), r.Operator}] = true
	}
	for _, c := range cases {
		if !seen[[2]string{c.scheme.String(), c.op}] {
			t.Errorf("no %s mutants generated under %v", c.op, c.scheme)
		}
	}
}

package host

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hfi/internal/chaos"
	"hfi/internal/cpu"
	"hfi/internal/faas"
	"hfi/internal/kernel"
	"hfi/internal/stats"
	"hfi/internal/tier"
)

// The substrate soak is chaos phase three: faults injected *below* the
// serving seams — bit flips in guest heaps, stale decision-cache entries
// surviving a suppressed invalidation, clock skew between a worker's
// rails, corrupted cached-lowering gate verdicts — with the host's
// detect-and-recover path (sampled heap-hash spot checks, generation
// cross-audits, gate freshness audits, drift audits, quarantine) standing
// between the corruption and the tenants. Run race-detected, twice with
// the same seed, with a cross-tenant escape oracle armed on every
// provisioned machine, it asserts exactly:
//
//   - determinism — identical per-tenant outcomes, checksums, and
//     substrate counters across same-seed runs;
//   - prediction — outcomes and per-tenant substrate counters match a
//     single-threaded mirror of the injector's decision schedule;
//   - conservation — admitted == ok+timeout+fault+shed+rejected+canceled
//     with substrate faults folded into fault, and
//     Injected == Detected + Benign, Recovered == Detected, globally and
//     per tenant, with the global view the exact sum of tenant views;
//   - containment — zero accesses outside any instance's owned spans
//     under every substrate fault class (the mutation harness's canary
//     oracle, here armed fleet-wide via Config.OnProvision).

// soakSubstrateCfg layers the four substrate classes onto the phase-one
// seam faults. SpotCheck samples half the served requests for the
// cost-modeled heap scrub; live/dead plant modes split ~50/50 inside the
// injector, so every class exercises both its detected and its benign
// disposition.
func soakSubstrateCfg(seed int64) chaos.Config {
	return chaos.Config{
		Seed:      seed,
		Provision: 0.4, MaxProvisionFails: 2,
		Reject: 0.03,
		Trap:   0.05,
		Fuel:   0.05, StarvedFuel: 64,
		Slow: 0.02, SlowFor: 200 * time.Microsecond,
		Poison:   0.5,
		Hostcall: 0.10,

		BitFlip: 0.12, SpotCheck: 0.5,
		TLBStale:  0.10,
		ClockSkew: 0.08, SkewNs: 40_000,
		LoweringRot: 0.12,
	}
}

// substrateOutcomes extends the outcome tuple with the substrate ledger:
// faults carrying a typed *cpu.SubstrateError are counted apart from
// ordinary guest faults, and the per-tenant SubstrateCounters ride along.
type substrateOutcomes struct {
	ok, timeouts, faults, subFaults, rejected uint64
	checksum                                  uint64
	sc                                        stats.SubstrateCounters
}

// escapeOracle is the fleet-wide cross-tenant containment oracle: armed
// on every instance the server provisions (Config.OnProvision), it maps
// writable canary pages directly after the heap reservation and the aux
// block and hooks every architectural memory access, flagging any that
// leaves the instance's owned spans. Substrate chaos must never turn
// into an escape — that is the PR's containment claim.
type escapeOracle struct {
	escapes atomic.Uint64
	mu      sync.Mutex
	first   string
}

func (o *escapeOracle) arm(ti *faas.TenantInstance) {
	inst := ti.Inst
	type span struct{ lo, hi uint64 }
	owned := []span{
		{inst.CodeBase, inst.CodeBase + inst.CodeSize},
		{inst.HeapBase, inst.HeapBase + inst.HeapReserved},
		{inst.AuxBase, inst.AuxBase + inst.AuxSize},
	}
	for i, b := range inst.ExtraMemBases {
		if b != 0 {
			owned = append(owned, span{b, b + inst.ExtraMemReserved[i]})
		}
	}
	m := ti.RT.M
	for _, at := range []uint64{inst.HeapBase + inst.HeapReserved, inst.AuxBase + inst.AuxSize} {
		_ = m.AS.MapFixed(at, 4*kernel.OSPageSize, kernel.ProtRead|kernel.ProtWrite)
	}
	m.MemHook = func(pc, addr uint64, size uint8, write bool) {
		end := addr + uint64(size)
		for _, s := range owned {
			if addr >= s.lo && end <= s.hi {
				return
			}
		}
		o.escapes.Add(1)
		o.mu.Lock()
		if o.first == "" {
			kind := "load"
			if write {
				kind = "store"
			}
			o.first = fmt.Sprintf("%s %s of %d bytes at %#x (pc %#x) outside sandbox",
				ti.Tenant.Name, kind, size, addr, pc)
		}
		o.mu.Unlock()
	}
}

// substrateRun is one substrate soak's observable result.
type substrateRun struct {
	sum     stats.ServeSummary
	tenants map[string]substrateOutcomes
	tsums   []stats.TenantSummary
	ctr     Counters
	snap    chaos.Summary
	escapes uint64
	first   string
}

// runSubstrateSoakOnce pushes reqs through a fresh substrate-chaos server
// with 8 concurrent closed-loop clients, the escape oracle armed on every
// provisioned instance.
func runSubstrateSoakOnce(t *testing.T, seed int64, reqs []Request) substrateRun {
	t.Helper()
	inj := chaos.New(soakSubstrateCfg(seed))
	oracle := &escapeOracle{}
	s := New(Config{
		Workers: 4, QueueDepth: 8, Policy: PolicyBlock,
		Retry: RetryConfig{Max: 2, Base: 50 * time.Microsecond, Cap: time.Millisecond},
		Pool:  PoolConfig{Cap: 3, TeardownBatch: 4},
		Chaos: inj, Seed: seed,
		OnProvision: oracle.arm,
		Tenants:     map[string]TenantPolicy{reqs[0].Tenant.Name: {Weight: 2}},
	})

	var next atomic.Int64
	var mu sync.Mutex
	obs := make(map[string]substrateOutcomes)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(reqs) {
					return
				}
				r := s.Do(context.Background(), reqs[i])
				name := reqs[i].Tenant.Name
				mu.Lock()
				o := obs[name]
				switch r.Status {
				case StatusOK:
					o.ok++
					o.checksum ^= faas.HashResponse(int(reqs[i].Seq), r.Body)
				case StatusTimeout:
					o.timeouts++
				case StatusFault:
					if errors.Is(r.Err, cpu.ErrSubstrate) {
						o.subFaults++
					} else {
						o.faults++
					}
				case StatusRejected:
					o.rejected++
				default:
					t.Errorf("req %d (%s seq %d): unexpected status %v err %v",
						i, name, reqs[i].Seq, r.Status, r.Err)
				}
				obs[name] = o
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	s.Close()
	for _, ts := range s.TenantSummaries() {
		o := obs[ts.Tenant]
		o.sc = ts.Substrate
		obs[ts.Tenant] = o
	}
	return substrateRun{
		sum: s.Snapshot(0), tenants: obs, tsums: s.TenantSummaries(),
		ctr: s.Counters(), snap: inj.Snapshot(),
		escapes: oracle.escapes.Load(), first: oracle.first,
	}
}

// substrateExpected predicts each tenant's outcomes, clean-response
// checksum, and SubstrateCounters from the injector decisions alone,
// serving the request set single-threaded as ground truth. The mirror
// follows the host's decision order exactly: admission rejection, then
// injected trap, then fuel starvation, then the end-of-request substrate
// stage — whose rot draw only happens for (tenant, iso) keys whose
// provisioned instance carries a cached lowering, mirrored here off a
// reference instance per key.
func substrateExpected(t *testing.T, seed int64, reqs []Request) map[string]substrateOutcomes {
	t.Helper()
	inj := chaos.New(soakSubstrateCfg(seed))
	instances := make(map[poolKey]*faas.TenantInstance)
	exp := make(map[string]substrateOutcomes)
	for _, r := range reqs {
		key := poolKey{r.Tenant.Name, r.Iso}
		ti := instances[key]
		if ti == nil {
			var err error
			ti, err = faas.Provision(r.Tenant, r.Iso)
			if err != nil {
				t.Fatalf("reference provision %s: %v", r.Tenant.Name, err)
			}
			instances[key] = ti
		}
		name, seq := r.Tenant.Name, int(r.Seq)
		ti.ArmHostcallFault(inj.Hostcall(name, seq))
		body, res := ti.ServeRequest(seq, 0)
		if res.Reason != cpu.StopHalt {
			t.Fatalf("reference %s seq %d: stop %v", name, r.Seq, res.Reason)
		}
		o := exp[name]
		switch {
		case inj.RejectAtAdmission(name, seq) != nil:
			o.rejected++
		case inj.Trap(name, seq):
			o.faults++
		case func() bool { _, starved := inj.StarveFuel(name, seq); return starved }():
			o.timeouts++
		default:
			// The substrate stage: same draws, same conditionals as
			// Server.substrateStage, reduced to their accounting.
			var sc stats.SubstrateCounters
			flip := inj.BitFlip(name, seq)
			spot := inj.SpotCheck(name, seq)
			tlbLive, tlbOK := inj.TLBStale(name, seq)
			_, skewLive, skewOK := inj.ClockSkew(name, seq)
			var rotLive, rotOK bool
			if te, tiered := ti.Eng.(*tier.Engine); tiered && te.HasLowering() {
				_, rotLive, rotOK = inj.LoweringRot(name, seq)
			}
			if flip {
				sc.Injected++
				if spot {
					sc.Detected++
				} else {
					sc.Benign++
				}
			}
			for _, plant := range []struct{ ok, live bool }{
				{tlbOK, tlbLive}, {skewOK, skewLive}, {rotOK, rotLive},
			} {
				if !plant.ok {
					continue
				}
				sc.Injected++
				if plant.live {
					sc.Detected++
				} else {
					sc.Benign++
				}
			}
			sc.Recovered = sc.Detected
			o.sc.Add(sc)
			if sc.Detected > 0 {
				o.subFaults++
			} else {
				o.ok++
				o.checksum ^= faas.HashResponse(seq, body)
			}
		}
		exp[name] = o
	}
	return exp
}

// TestChaosSoakSubstrate is soak phase three: the full tenant mix under
// every substrate fault class, race-detected, run twice with the same
// seed, with the escape oracle armed fleet-wide and a single-threaded
// injector mirror as the prediction.
func TestChaosSoakSubstrate(t *testing.T) {
	const seed = 4242
	total := 240
	if testing.Short() {
		total = 120
	}
	mix := soakMix()
	reqs := BuildSchedule(mix, total, seed)

	run1 := runSubstrateSoakOnce(t, seed, reqs)
	run2 := runSubstrateSoakOnce(t, seed, reqs)
	exp := substrateExpected(t, seed, reqs)

	// Containment: zero accesses outside any instance's owned spans, in
	// both runs, under every substrate fault class.
	for i, run := range []substrateRun{run1, run2} {
		if run.escapes != 0 {
			t.Fatalf("run %d: %d cross-span escapes under substrate chaos; first: %s",
				i+1, run.escapes, run.first)
		}
	}

	// Exact conservation with substrate faults folded into fault.
	for i, run := range []substrateRun{run1, run2} {
		sum := run.sum
		accounted := sum.OK + sum.Timeouts + sum.Faults + sum.Shed + sum.Rejected + sum.Canceled
		if accounted != uint64(total) || run.ctr.Admitted != uint64(total) {
			t.Fatalf("run %d: accounted %d admitted %d of %d: %+v",
				i+1, accounted, run.ctr.Admitted, total, sum)
		}
		if sum.Shed != 0 {
			t.Fatalf("run %d: %d sheds under PolicyBlock with no breaker", i+1, sum.Shed)
		}
		if run.ctr.PoolSize != 0 || run.ctr.Teardowns != run.ctr.ColdStarts {
			t.Fatalf("run %d: pool not fully recycled: %+v", i+1, run.ctr)
		}

		// Substrate counter conservation, globally: every injection is
		// accounted, every detection completed recovery, and the three
		// surfaces (recorder global, server counters, tenant sum) agree.
		sc := sum.Substrate
		if sc.Injected != sc.Detected+sc.Benign {
			t.Fatalf("run %d: injected %d != detected %d + benign %d",
				i+1, sc.Injected, sc.Detected, sc.Benign)
		}
		if sc.Recovered != sc.Detected {
			t.Fatalf("run %d: recovered %d != detected %d", i+1, sc.Recovered, sc.Detected)
		}
		if run.ctr.Substrate != sc {
			t.Fatalf("run %d: server counters %+v != recorder global %+v",
				i+1, run.ctr.Substrate, sc)
		}
		var tsum stats.SubstrateCounters
		for _, ts := range run.tsums {
			tsc := ts.Substrate
			if tsc.Injected != tsc.Detected+tsc.Benign || tsc.Recovered != tsc.Detected {
				t.Fatalf("run %d: tenant %s substrate counters unconserved: %+v",
					i+1, ts.Tenant, tsc)
			}
			tsum.Add(tsc)
		}
		if tsum != sc {
			t.Fatalf("run %d: tenant substrate counters %+v do not sum to global %+v",
				i+1, tsum, sc)
		}
	}

	// Non-degenerate schedule: every substrate class fired, and both the
	// detected and the benign dispositions occurred.
	snap := run1.snap
	for _, c := range []struct {
		name string
		n    uint64
	}{
		{"bitflip", snap.BitFlip}, {"tlbstale", snap.TLBStale},
		{"clockskew", snap.ClockSkew}, {"loweringrot", snap.LoweringRot},
	} {
		if c.n == 0 {
			t.Fatalf("substrate class %s never fired — tune soak rates", c.name)
		}
	}
	if sc := run1.sum.Substrate; sc.Detected == 0 || sc.Benign == 0 {
		t.Fatalf("degenerate substrate dispositions: %+v — tune soak rates", sc)
	}

	// Determinism and prediction: identical per-tenant outcome counts,
	// checksums, and substrate counters across same-seed runs, both equal
	// to the single-threaded injector mirror.
	for _, mixClass := range mix {
		name := mixClass.Tenant.Name
		o1, o2, e := run1.tenants[name], run2.tenants[name], exp[name]
		if o1 != o2 {
			t.Fatalf("%s: runs diverged: %+v vs %+v", name, o1, o2)
		}
		if o1 != e {
			t.Fatalf("%s: observed %+v, injector predicts %+v", name, o1, e)
		}
		if e.ok == 0 {
			t.Fatalf("%s: degenerate schedule (no clean requests) %+v", name, e)
		}
	}

	// The injector's own per-class fire counts are deterministic too —
	// except Provision, whose draw count follows the number of cold
	// starts, which is pool-eviction-timing-dependent (each draw is still
	// a pure hash, so outcomes never vary; only the count of draws does).
	s1, s2 := run1.snap, run2.snap
	s1.Provision, s2.Provision = 0, 0
	if s1 != s2 {
		t.Fatalf("injector snapshots diverged: %+v vs %+v", s1, s2)
	}
}

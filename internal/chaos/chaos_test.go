package chaos

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hfi/internal/hostcall"
)

// TestDeterministicSchedule: two injectors with the same seed make
// identical decisions for every (class, tenant, seq), regardless of query
// order; a different seed diverges somewhere.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 7, Provision: 0.5, Reject: 0.1, Trap: 0.2, Fuel: 0.2, Slow: 0.2, Poison: 0.5}
	a, b := New(cfg), New(cfg)
	cfg2 := cfg
	cfg2.Seed = 8
	c := New(cfg2)

	tenants := []string{"alpha", "beta", "gamma"}
	diverged := false
	for _, tn := range tenants {
		// Query b in reverse order to prove order-independence.
		for seq := 99; seq >= 0; seq-- {
			_ = b.Trap(tn, seq)
		}
	}
	for _, tn := range tenants {
		for seq := 0; seq < 100; seq++ {
			if a.Trap(tn, seq) != (b.roll(FaultTrap, tn, seq) < cfg.Trap) {
				t.Fatalf("trap decision diverged at %s/%d", tn, seq)
			}
			af, aok := a.StarveFuel(tn, seq)
			bf, bok := b.StarveFuel(tn, seq)
			if aok != bok || af != bf {
				t.Fatalf("fuel decision diverged at %s/%d", tn, seq)
			}
			if (a.RejectAtAdmission(tn, seq) == nil) != (b.RejectAtAdmission(tn, seq) == nil) {
				t.Fatalf("reject decision diverged at %s/%d", tn, seq)
			}
			if a.SlowDown(tn, seq) != b.SlowDown(tn, seq) {
				t.Fatalf("slow decision diverged at %s/%d", tn, seq)
			}
			if a.Poison(tn, seq) != b.Poison(tn, seq) {
				t.Fatalf("poison decision diverged at %s/%d", tn, seq)
			}
			if a.Trap(tn, seq) != c.Trap(tn, seq) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 made identical trap schedules over 300 requests")
	}
}

// TestProvisionPrefixFailures: an affected tenant fails a fixed prefix of
// attempts and then succeeds forever; retrying MaxProvisionFails times
// therefore always provisions. Unaffected tenants never fail.
func TestProvisionPrefixFailures(t *testing.T) {
	in := New(Config{Seed: 3, Provision: 1.0, MaxProvisionFails: 3})
	for _, tn := range []string{"t0", "t1", "t2", "t3"} {
		k := 0
		for ; k <= 10; k++ {
			if in.ProvisionError(tn, k) == nil {
				break
			}
		}
		if k < 1 || k > 3 {
			t.Fatalf("%s: failure prefix %d, want in [1,3]", tn, k)
		}
		// The prefix is a prefix: every attempt ≥ k succeeds.
		for a := k; a < k+5; a++ {
			if err := in.ProvisionError(tn, a); err != nil {
				t.Fatalf("%s: attempt %d failed after success at %d: %v", tn, a, k, err)
			}
		}
		// And it replays identically on the next provisioning call.
		for a := 0; a < k; a++ {
			if in.ProvisionError(tn, a) == nil {
				t.Fatalf("%s: attempt %d succeeded on replay, want failure", tn, a)
			}
		}
	}
	off := New(Config{Seed: 3, Provision: 0})
	if err := off.ProvisionError("t0", 0); err != nil {
		t.Fatalf("rate-0 injector failed a provision: %v", err)
	}
}

// TestTransientClassification: injected faults are typed and transient.
func TestTransientClassification(t *testing.T) {
	in := New(Config{Seed: 1, Provision: 1})
	err := in.ProvisionError("x", 0)
	if err == nil {
		t.Skip("tenant x unaffected at this seed") // Provision=1 affects all
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("error %T is not *FaultError", err)
	}
	if !fe.Transient() {
		t.Fatal("injected provision fault is not transient")
	}
	if fe.Class != FaultProvision {
		t.Fatalf("class = %v", fe.Class)
	}
}

// TestNilInjector: a nil injector never injects and never panics.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Trap("t", 0) || in.Poison("t", 0) {
		t.Fatal("nil injector injected")
	}
	if _, ok := in.StarveFuel("t", 0); ok {
		t.Fatal("nil injector starved fuel")
	}
	if in.ProvisionError("t", 0) != nil || in.RejectAtAdmission("t", 0) != nil {
		t.Fatal("nil injector errored")
	}
	if in.SlowDown("t", 0) != 0 {
		t.Fatal("nil injector slowed down")
	}
	if in.Hostcall("t", 0) != hostcall.FaultNone {
		t.Fatal("nil injector armed a hostcall fault")
	}
	if !in.Clean("t", 0) {
		t.Fatal("nil injector marked a request unclean")
	}
	if in.Snapshot().Total() != 0 || in.Seed() != 0 {
		t.Fatal("nil injector has state")
	}
}

// TestCleanMatchesDecisions: Clean is exactly "no trap, no starvation, no
// rejection, no output-changing hostcall fault", and rates actually fire
// at plausible frequencies.
func TestCleanMatchesDecisions(t *testing.T) {
	in := Default(42)
	var trapped, starved, rejected, hcFaults, hcSlow, clean int
	const n = 2000
	for seq := 0; seq < n; seq++ {
		tr := in.Trap("tenant", seq)
		_, fu := in.StarveFuel("tenant", seq)
		re := in.RejectAtAdmission("tenant", seq) != nil
		hc := in.Hostcall("tenant", seq)
		if tr {
			trapped++
		}
		if fu {
			starved++
		}
		if re {
			rejected++
		}
		switch hc {
		case hostcall.FaultErr, hostcall.FaultQuota:
			hcFaults++
		case hostcall.FaultSlow:
			hcSlow++
		}
		hcDirty := hc == hostcall.FaultErr || hc == hostcall.FaultQuota
		if in.Clean("tenant", seq) != (!tr && !fu && !re && !hcDirty) {
			t.Fatalf("Clean inconsistent at seq %d", seq)
		}
		if in.Clean("tenant", seq) {
			clean++
		}
	}
	if trapped == 0 || starved == 0 || rejected == 0 {
		t.Fatalf("default rates never fired: trap=%d fuel=%d reject=%d", trapped, starved, rejected)
	}
	if hcFaults == 0 || hcSlow == 0 {
		t.Fatalf("hostcall submodes never fired: err/quota=%d slow=%d", hcFaults, hcSlow)
	}
	if clean < n/2 {
		t.Fatalf("only %d/%d requests clean under Default — rates too hot", clean, n)
	}
	s := in.Snapshot()
	if s.Trap == 0 || s.Fuel == 0 || s.Reject == 0 || s.Hostcall == 0 {
		t.Fatalf("snapshot lost counts: %+v", s)
	}
}

// TestConcurrentDecisions: concurrent queries race-free and identical to a
// serial replay (run under -race).
func TestConcurrentDecisions(t *testing.T) {
	in := Default(9)
	var wg sync.WaitGroup
	results := make([][]bool, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		results[g] = make([]bool, 200)
		go func(g int) {
			defer wg.Done()
			for seq := 0; seq < 200; seq++ {
				results[g][seq] = in.Trap("shared", seq)
			}
		}(g)
	}
	wg.Wait()
	ref := New(Config{Seed: 9, Trap: Default(9).cfg.Trap})
	for seq := 0; seq < 200; seq++ {
		want := ref.Trap("shared", seq)
		for g := 0; g < 8; g++ {
			if results[g][seq] != want {
				t.Fatalf("goroutine %d diverged at seq %d", g, seq)
			}
		}
	}
}

// TestSlowDownDuration: slowdowns use the configured duration.
func TestSlowDownDuration(t *testing.T) {
	in := New(Config{Seed: 5, Slow: 1, SlowFor: 3 * time.Millisecond})
	if d := in.SlowDown("t", 0); d != 3*time.Millisecond {
		t.Fatalf("slowdown = %v, want 3ms", d)
	}
}

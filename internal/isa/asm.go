package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses textual assembly into a Program based at base. The
// syntax follows the disassembly produced by Instr.String, plus labels:
//
//	start:
//	    movi r1, 100
//	    movi r2, 0
//	loop:
//	    add r2, r2, r1          ; registers or immediates
//	    sub r1, r1, 1
//	    br.ne r1, 0, loop       ; conditions: eq ne lt ge gt le ltu geu gtu leu
//	    ld32 r3, [r2 + r1*4 + 8]
//	    st8 [r2 + 16], r3       ; index term optional
//	    hld64 0, r4, [r1*1 + 0] ; explicit-region access via hmov<n>
//	    hst32 2, [r1 + 4], r5
//	    call fn                 ; label or absolute 0x-address
//	    jmpi r6
//	    hfi_enter r6
//	    hfi_set_region 6, r4
//	    syscall
//	    halt
//
// Comments start with ';' or '#'. Loads sign-extend with the 's' suffix
// (ld32s). Numbers are decimal or 0x-hex, optionally negative.
func Assemble(base uint64, src string) (*Program, error) {
	b := NewBuilder(base)
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			label := strings.TrimSuffix(line, ":")
			if !isIdent(label) {
				return nil, asmErr(lineno, "bad label %q", label)
			}
			if err := catchPanic(func() { b.Label(label) }); err != nil {
				return nil, asmErr(lineno, "%v", err)
			}
			continue
		}
		// Builder methods panic on malformed operands (bad sizes, explicit
		// region registers out of range, ...); surface those as assembly
		// errors rather than crashing the caller.
		if err := catchPanic(func() {
			if lerr := asmLine(b, line); lerr != nil {
				panic(lerr)
			}
		}); err != nil {
			return nil, asmErr(lineno, "%v", err)
		}
	}
	var p *Program
	err := catchPanic(func() { p = b.Build() })
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func asmErr(lineno int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", lineno+1, fmt.Sprintf(format, args...))
}

func catchPanic(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	f()
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// asmLine assembles one instruction.
func asmLine(b *Builder, line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.TrimSpace(mnemonic)
	rest = strings.TrimSpace(rest)
	ops := splitOperands(rest)

	switch {
	case mnemonic == "nop":
		b.Nop()
	case mnemonic == "halt":
		b.Halt()
	case mnemonic == "ret":
		b.Ret()
	case mnemonic == "syscall":
		b.Syscall()
	case mnemonic == "hostcall":
		b.Hostcall()
	case mnemonic == "fence":
		b.Fence()
	case mnemonic == "hfi_exit":
		b.HfiExit()
	case mnemonic == "hfi_reenter":
		b.HfiReenter()
	case mnemonic == "hfi_clear_all_regions":
		b.HfiClearAll()

	case mnemonic == "movi":
		rd, err := parseReg(op(ops, 0))
		if err != nil {
			return err
		}
		imm, err := parseImm(op(ops, 1))
		if err != nil {
			return err
		}
		b.MovImm(rd, imm)
	case mnemonic == "mov":
		rd, err := parseReg(op(ops, 0))
		if err != nil {
			return err
		}
		rs, err := parseReg(op(ops, 1))
		if err != nil {
			return err
		}
		b.Mov(rd, rs)
	case mnemonic == "rdtsc":
		rd, err := parseReg(op(ops, 0))
		if err != nil {
			return err
		}
		b.Rdtsc(rd)
	case mnemonic == "jmpi":
		rs, err := parseReg(op(ops, 0))
		if err != nil {
			return err
		}
		b.JmpInd(rs)
	case mnemonic == "calli":
		rs, err := parseReg(op(ops, 0))
		if err != nil {
			return err
		}
		b.CallInd(rs)
	case mnemonic == "jmp" || mnemonic == "call":
		if len(ops) != 1 {
			return fmt.Errorf("%s needs a target", mnemonic)
		}
		if addr, err := parseImm(ops[0]); err == nil {
			if mnemonic == "jmp" {
				b.JmpAddr(uint64(addr))
			} else {
				b.CallAddr(uint64(addr))
			}
		} else if isIdent(ops[0]) {
			if mnemonic == "jmp" {
				b.Jmp(ops[0])
			} else {
				b.Call(ops[0])
			}
		} else {
			return fmt.Errorf("bad target %q", ops[0])
		}
	case strings.HasPrefix(mnemonic, "br."):
		cond, err := parseCond(strings.TrimPrefix(mnemonic, "br."))
		if err != nil {
			return err
		}
		rs1, err := parseReg(op(ops, 0))
		if err != nil {
			return err
		}
		target := op(ops, 2)
		if !isIdent(target) {
			return fmt.Errorf("branch target must be a label, got %q", target)
		}
		if imm, err := parseImm(op(ops, 1)); err == nil {
			b.BrImm(cond, rs1, imm, target)
		} else if rs2, err := parseReg(op(ops, 1)); err == nil {
			b.Br(cond, rs1, rs2, target)
		} else {
			return fmt.Errorf("bad branch operand %q", op(ops, 1))
		}

	case strings.HasPrefix(mnemonic, "ld"):
		size, signExt, err := parseSizeSuffix(strings.TrimPrefix(mnemonic, "ld"))
		if err != nil {
			return err
		}
		rd, err := parseReg(op(ops, 0))
		if err != nil {
			return err
		}
		base, index, scale, disp, err := parseMem(op(ops, 1))
		if err != nil {
			return err
		}
		if signExt {
			b.LoadS(size, rd, base, index, scale, disp)
		} else {
			b.Load(size, rd, base, index, scale, disp)
		}
	case strings.HasPrefix(mnemonic, "st"):
		size, _, err := parseSizeSuffix(strings.TrimPrefix(mnemonic, "st"))
		if err != nil {
			return err
		}
		base, index, scale, disp, err := parseMem(op(ops, 0))
		if err != nil {
			return err
		}
		src, err := parseReg(op(ops, 1))
		if err != nil {
			return err
		}
		b.Store(size, base, index, scale, disp, src)

	case strings.HasPrefix(mnemonic, "hld"):
		size, signExt, err := parseSizeSuffix(strings.TrimPrefix(mnemonic, "hld"))
		if err != nil {
			return err
		}
		hreg, err := parseImm(op(ops, 0))
		if err != nil {
			return err
		}
		rd, err := parseReg(op(ops, 1))
		if err != nil {
			return err
		}
		_, index, scale, disp, err := parseMem(op(ops, 2))
		if err != nil {
			return err
		}
		if signExt {
			b.Raw(Instr{Op: OpHLoad, Rd: rd, Rs1: RegNone, Rs2: index, Rs3: RegNone,
				HReg: uint8(hreg), Size: size, Scale: scale, Disp: disp, SignExt: true})
		} else {
			b.HLoad(uint8(hreg), size, rd, index, scale, disp)
		}
	case strings.HasPrefix(mnemonic, "hst"):
		size, _, err := parseSizeSuffix(strings.TrimPrefix(mnemonic, "hst"))
		if err != nil {
			return err
		}
		hreg, err := parseImm(op(ops, 0))
		if err != nil {
			return err
		}
		_, index, scale, disp, err := parseMem(op(ops, 1))
		if err != nil {
			return err
		}
		src, err := parseReg(op(ops, 2))
		if err != nil {
			return err
		}
		b.HStore(uint8(hreg), size, index, scale, disp, src)

	case mnemonic == "hfi_enter":
		rs, err := parseReg(op(ops, 0))
		if err != nil {
			return err
		}
		b.HfiEnter(rs)
	case mnemonic == "hfi_set_region" || mnemonic == "hfi_get_region":
		n, err := parseImm(op(ops, 0))
		if err != nil {
			return err
		}
		rs, err := parseReg(op(ops, 1))
		if err != nil {
			return err
		}
		if mnemonic == "hfi_set_region" {
			b.HfiSetRegion(uint8(n), rs)
		} else {
			b.HfiGetRegion(uint8(n), rs)
		}
	case mnemonic == "hfi_clear_region":
		n, err := parseImm(op(ops, 0))
		if err != nil {
			return err
		}
		b.HfiClearRegion(uint8(n))
	case mnemonic == "xsave" || mnemonic == "xrstor":
		rs, err := parseReg(op(ops, 0))
		if err != nil {
			return err
		}
		if mnemonic == "xsave" {
			b.Xsave(rs)
		} else {
			b.Xrstor(rs)
		}
	case mnemonic == "clflush":
		base, _, _, disp, err := parseMem(op(ops, 0))
		if err != nil {
			return err
		}
		b.Clflush(base, disp)

	default:
		// Three-operand ALU, with optional .32 suffix for i32 semantics.
		name := mnemonic
		w32 := false
		if strings.HasSuffix(name, ".32") {
			w32 = true
			name = strings.TrimSuffix(name, ".32")
		}
		aop, ok := aluByName[name]
		if !ok {
			return fmt.Errorf("unknown mnemonic %q", mnemonic)
		}
		rd, err := parseReg(op(ops, 0))
		if err != nil {
			return err
		}
		rs1, err := parseReg(op(ops, 1))
		if err != nil {
			return err
		}
		if aop == OpNot || aop == OpNeg {
			b.Raw(Instr{Op: aop, Rd: rd, Rs1: rs1, Rs2: RegNone, Rs3: RegNone, W32: w32})
			return nil
		}
		if rs2, err := parseReg(op(ops, 2)); err == nil {
			b.Raw(Instr{Op: aop, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: RegNone, W32: w32})
		} else if imm, err := parseImm(op(ops, 2)); err == nil {
			b.Raw(Instr{Op: aop, Rd: rd, Rs1: rs1, Rs2: RegNone, Rs3: RegNone, UseImm: true, Imm: imm, W32: w32})
		} else {
			return fmt.Errorf("bad ALU operand %q", op(ops, 2))
		}
	}
	return nil
}

var aluByName = map[string]Op{
	"add": OpAdd, "sub": OpSub, "and": OpAnd, "or": OpOr, "xor": OpXor,
	"shl": OpShl, "shr": OpShr, "sar": OpSar, "mul": OpMul, "div": OpDiv,
	"rem": OpRem, "not": OpNot, "neg": OpNeg,
}

func op(ops []string, i int) string {
	if i < len(ops) {
		return ops[i]
	}
	return ""
}

// splitOperands splits on commas that are not inside brackets.
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "sp":
		return SP, nil
	case "-":
		return RegNone, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("missing immediate")
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	out := int64(v)
	if neg {
		out = -out
	}
	return out, nil
}

func parseSizeSuffix(s string) (size uint8, signExt bool, err error) {
	if strings.HasSuffix(s, "s") {
		signExt = true
		s = strings.TrimSuffix(s, "s")
	}
	switch s {
	case "8":
		return 1, signExt, nil
	case "16":
		return 2, signExt, nil
	case "32":
		return 4, signExt, nil
	case "64":
		return 8, signExt, nil
	}
	return 0, false, fmt.Errorf("bad access width %q (want 8/16/32/64)", s)
}

// parseMem parses "[base + index*scale + disp]" where every term is
// optional (but at least one must be present); base and index are
// registers, scale is 1/2/4/8, disp is an immediate.
func parseMem(s string) (base, index Reg, scale uint8, disp int64, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	base, index, scale = RegNone, RegNone, 1
	inner := strings.TrimSpace(s[1 : len(s)-1])
	// Normalize "a - b" into "a + -b" for splitting.
	inner = strings.ReplaceAll(inner, "+ -", "+-")
	for _, term := range strings.Split(inner, "+") {
		term = strings.TrimSpace(term)
		if term == "" || term == "-" {
			continue
		}
		switch {
		case strings.Contains(term, "*"):
			rpart, spart, _ := strings.Cut(term, "*")
			idx, rerr := parseReg(rpart)
			if rerr != nil {
				return 0, 0, 0, 0, rerr
			}
			sc, serr := parseImm(spart)
			if serr != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
				return 0, 0, 0, 0, fmt.Errorf("bad scale in %q", term)
			}
			if idx != RegNone {
				index, scale = idx, uint8(sc)
			}
		default:
			if r, rerr := parseReg(term); rerr == nil {
				if base == RegNone {
					base = r
				} else if index == RegNone {
					index = r
				} else {
					return 0, 0, 0, 0, fmt.Errorf("too many registers in %q", s)
				}
				continue
			}
			d, derr := parseImm(term)
			if derr != nil {
				return 0, 0, 0, 0, fmt.Errorf("bad term %q", term)
			}
			disp = d
		}
	}
	return base, index, scale, disp, nil
}

// Disassemble renders a program as assembly text with synthesized labels
// at branch targets, suitable for reading (and, for the supported subset,
// for re-assembly).
func Disassemble(p *Program) string {
	// Collect branch targets.
	targets := map[uint64]string{}
	for name, addr := range p.Symbols {
		targets[addr] = name
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if (in.Op == OpBr || in.Op == OpJmp || in.Op == OpCall) && targets[in.Target] == "" {
			targets[in.Target] = fmt.Sprintf("L%x", in.Target)
		}
	}
	var sb strings.Builder
	for i := range p.Instrs {
		addr := p.Base + uint64(i)*InstrBytes
		if name := targets[addr]; name != "" {
			fmt.Fprintf(&sb, "%s:\n", name)
		}
		in := p.Instrs[i]
		text := in.String()
		if name, ok := targets[in.Target]; ok && (in.Op == OpBr || in.Op == OpJmp || in.Op == OpCall) {
			text = strings.Replace(text, fmt.Sprintf("0x%x", in.Target), name, 1)
		}
		fmt.Fprintf(&sb, "    %-40s ; %#x\n", text, addr)
	}
	return sb.String()
}

func parseCond(s string) (Cond, error) {
	for i, name := range condNames {
		if name == s {
			return Cond(i), nil
		}
	}
	return 0, fmt.Errorf("unknown condition %q", s)
}

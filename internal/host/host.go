// Package host is the concurrent multi-tenant sandbox serving layer: a
// wall-clock worker pool in front of the simulated FaaS platform. Where
// faas.ServeTenant drives one warm instance on one goroutine, a host.Server
// schedules mixed-tenant request streams across N worker goroutines behind
// a bounded admission queue with a configurable backpressure policy (block
// the submitter, or shed with a 429-style rejection counter).
//
// Each worker owns a private pool of warm faas.TenantInstance sets keyed by
// (tenant, isolation config), so the large per-instance allocations — a
// cpu.Machine, a simulated kernel and address space, compiled code — are
// built once per (worker, tenant, config) and warm-reused across requests,
// mirroring the warm-instance model the paper's FaaS evaluation (§6.3)
// assumes. Machines are never shared across goroutines: all simulator state
// (kernel, memory, HFI, caches) is confined to the owning worker, which is
// what makes the layer race-free by construction.
//
// Per-request deadlines ride on the engines' existing instruction budget
// ("fuel"): a request that exhausts its budget stops with cpu.StopLimit and
// is surfaced as StatusTimeout, and the instance is reset (sandbox.Reset)
// before reuse. Latencies and outcomes feed a stats.Recorder
// (p50/p99/p999, throughput, shed rate).
package host

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hfi/internal/cpu"
	"hfi/internal/faas"
	"hfi/internal/stats"
	"hfi/internal/verifier"
	"hfi/internal/workloads"
)

// Policy selects what a full admission queue does to new requests.
type Policy uint8

// Backpressure policies.
const (
	// PolicyBlock applies backpressure to the submitter: Submit blocks
	// until the queue drains (a closed-loop client slows down).
	PolicyBlock Policy = iota
	// PolicyShed rejects immediately with StatusShed when the queue is
	// full — the HTTP-429 path — and counts the rejection.
	PolicyShed
)

func (p Policy) String() string {
	if p == PolicyShed {
		return "shed"
	}
	return "block"
}

// Config parameterizes a Server.
type Config struct {
	// Workers is the number of worker goroutines; each owns its own warm
	// instance pool. Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue. Defaults to 2*Workers.
	QueueDepth int
	// Policy is the backpressure policy when the queue is full.
	Policy Policy
	// Fuel is the default per-request instruction budget (0 = unlimited).
	// A request exceeding it stops with cpu.StopLimit → StatusTimeout.
	Fuel uint64
	// DispatchWall models the per-request platform work outside the
	// sandbox (network receive, routing, response send) as real wall time,
	// the wall-clock twin of faas.DispatchOverheadNs on the simulated
	// clock. Workers overlap these waits, so throughput scales with the
	// pool even when guest execution itself is bottlenecked on CPU.
	DispatchWall time.Duration
}

// Status classifies a response.
type Status uint8

// Response statuses.
const (
	StatusOK      Status = iota // guest halted normally; Body is valid
	StatusTimeout               // fuel budget exhausted (cpu.StopLimit)
	StatusShed                  // rejected at admission (PolicyShed, queue full)
	StatusFault                 // guest fault or provisioning error
	// StatusRejected: the tenant's compiled program failed static
	// verification at provisioning (a *verifier.RejectError is in Err).
	// Distinct from shed: a shed request lost the capacity race, a
	// rejected one was refused on proof grounds and never ran.
	StatusRejected
)

var statusNames = [...]string{"ok", "timeout", "shed", "fault", "rejected"}

func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Request is one guest invocation: the seq'th request of tenant's stream,
// served under the given isolation configuration.
type Request struct {
	Tenant workloads.Tenant
	Iso    faas.Config
	Seq    int
	// Fuel overrides the server's default budget when nonzero.
	Fuel uint64
}

// Response reports one request's outcome.
type Response struct {
	Status  Status
	Body    []byte         // response bytes (StatusOK only)
	Stop    cpu.StopReason // engine stop reason for executed requests
	Err     error          // provisioning error (StatusFault only)
	Worker  int            // worker that served the request
	Latency time.Duration  // wall time from admission to completion
}

type call struct {
	req  Request
	t0   time.Time
	done chan Response
}

// poolKey identifies a warm-instance pool slot: one tenant under one
// isolation configuration.
type poolKey struct {
	tenant string
	iso    faas.Config
}

// Server is the concurrent serving layer. Create with New, feed with
// Submit/Do, then Close. Submitting after Close panics.
type Server struct {
	cfg        Config
	queue      chan call
	rec        *stats.Recorder
	wg         sync.WaitGroup
	started    time.Time
	coldStarts atomic.Uint64
	rejected   atomic.Uint64

	mu     sync.Mutex
	closed bool
}

// New starts a server with cfg.Workers goroutines waiting on the queue.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan call, cfg.QueueDepth),
		rec:     stats.NewRecorder(),
		started: time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// Workers reports the configured pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// Submit admits one request and returns a channel that receives exactly one
// Response. Under PolicyBlock a full queue blocks the caller; under
// PolicyShed a full queue resolves immediately with StatusShed.
func (s *Server) Submit(req Request) <-chan Response {
	done := make(chan Response, 1)
	c := call{req: req, t0: time.Now(), done: done}
	if s.cfg.Policy == PolicyShed {
		select {
		case s.queue <- c:
		default:
			s.rejected.Add(1)
			s.rec.Record(stats.OutcomeShed, 0)
			done <- Response{Status: StatusShed}
		}
		return done
	}
	s.queue <- c
	return done
}

// Do submits and waits for the response.
func (s *Server) Do(req Request) Response { return <-s.Submit(req) }

// Close drains the queue, stops the workers, and waits for them to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Snapshot summarizes latencies and outcomes so far, with throughput
// computed over the given wall window (pass time.Since(start) of the load
// run, or 0 to skip throughput).
func (s *Server) Snapshot(elapsed time.Duration) stats.ServeSummary {
	return s.rec.Snapshot(float64(elapsed.Nanoseconds()))
}

// ColdStarts counts instance provisionings (pool misses) so far.
func (s *Server) ColdStarts() uint64 { return s.coldStarts.Load() }

// Rejected counts admissions refused under PolicyShed — the 429 counter.
func (s *Server) Rejected() uint64 { return s.rejected.Load() }

// worker owns a private pool of warm instances and serves queue entries
// until the queue closes. Nothing in the pool ever crosses goroutines.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	pool := make(map[poolKey]*faas.TenantInstance)
	for c := range s.queue {
		resp := s.serveOne(id, pool, c.req)
		resp.Latency = time.Since(c.t0)
		lat := float64(resp.Latency.Nanoseconds())
		switch resp.Status {
		case StatusOK:
			s.rec.Record(stats.OutcomeOK, lat)
		case StatusTimeout:
			s.rec.Record(stats.OutcomeTimeout, lat)
		case StatusRejected:
			s.rec.Record(stats.OutcomeRejected, 0)
		default:
			s.rec.Record(stats.OutcomeFault, lat)
		}
		c.done <- resp
	}
}

// serveOne runs one request on the worker's warm instance for its
// (tenant, config), provisioning on first use.
func (s *Server) serveOne(id int, pool map[poolKey]*faas.TenantInstance, req Request) Response {
	if d := s.cfg.DispatchWall; d > 0 {
		time.Sleep(d)
	}
	key := poolKey{req.Tenant.Name, req.Iso}
	ti := pool[key]
	if ti == nil {
		var err error
		ti, err = faas.Provision(req.Tenant, req.Iso)
		if err != nil {
			var re *verifier.RejectError
			if errors.As(err, &re) {
				return Response{Status: StatusRejected, Err: err, Worker: id}
			}
			return Response{Status: StatusFault, Err: err, Worker: id}
		}
		pool[key] = ti
		s.coldStarts.Add(1)
	}
	fuel := req.Fuel
	if fuel == 0 {
		fuel = s.cfg.Fuel
	}
	body, res := ti.ServeRequest(req.Seq, fuel)
	switch res.Reason {
	case cpu.StopHalt:
		return Response{Status: StatusOK, Body: body, Stop: res.Reason, Worker: id}
	case cpu.StopLimit:
		// Deadline exceeded mid-run: the instance memory is mid-request
		// garbage; restore it before the pool reuses it.
		ti.Inst.Reset()
		return Response{Status: StatusTimeout, Stop: res.Reason, Worker: id}
	default:
		ti.Inst.Reset()
		return Response{Status: StatusFault, Stop: res.Reason, Worker: id}
	}
}

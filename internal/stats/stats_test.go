package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanMedianPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Mean(xs); got != 3 {
		t.Fatalf("mean = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 75); got != 4 {
		t.Fatalf("p75 = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("mean(nil) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("geomean = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("geomean of non-positive did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

// TestPercentileEdges pins the boundary behaviour hosts depend on: empty
// input, a single sample, out-of-range p, unsorted input (Percentile sorts a
// copy and must not mutate the caller's slice), and the p99.9 tail used by
// the serving layer.
func TestPercentileEdges(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("p50(empty) = %v, want 0", got)
	}
	for _, p := range []float64{-10, 0, 50, 100, 200} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("p%v(single) = %v, want 7", p, got)
		}
	}
	xs := []float64{9, 3, 7, 1, 5}
	if got := Percentile(xs, -5); got != 1 {
		t.Fatalf("p-5 = %v, want min", got)
	}
	if got := Percentile(xs, 250); got != 9 {
		t.Fatalf("p250 = %v, want max", got)
	}
	if got := Percentile(xs, 25); got != 3 {
		t.Fatalf("p25(unsorted) = %v, want 3", got)
	}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("p50(unsorted) = %v, want 5", got)
	}
	if xs[0] != 9 || xs[4] != 5 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
	// p99.9 over 1..1000: pos = 0.999*999 = 998.001, interpolating
	// between 999 and 1000.
	big := make([]float64, 1000)
	for i := range big {
		big[i] = float64(1000 - i) // descending: also exercises sorting
	}
	if got := Percentile(big, 99.9); math.Abs(got-999.001) > 1e-9 {
		t.Fatalf("p99.9 = %v, want 999.001", got)
	}
	if got := Percentile([]float64{2, 4}, 50); got != 3 {
		t.Fatalf("p50 interpolation = %v, want 3", got)
	}
}

// TestPercentileProperty: percentiles are monotone and bounded by min/max.
func TestPercentileProperty(t *testing.T) {
	prop := func(raw []uint16, pa, pb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a, b := float64(pa%101), float64(pb%101)
		if a > b {
			a, b = b, a
		}
		va, vb := Percentile(xs, a), Percentile(xs, b)
		return va <= vb && va >= Min(xs) && vb <= Max(xs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow("xxx", "y")
	tb.AddNote("n=%d", 7)
	out := tb.String()
	for _, want := range []string{"== T ==", "a", "bb", "xxx", "note: n=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	cases := map[string]string{
		Ns(5):          "5ns",
		Ns(1500):       "1.50us",
		Ns(2.5e6):      "2.50ms",
		Ns(3e9):        "3.00s",
		Bytes(512):     "512B",
		Bytes(2048):    "2.0KiB",
		Bytes(3 << 20): "3.0MiB",
		Bytes(5 << 30): "5.0GiB",
		Pct(1.032):     "+3.2%",
		Pct(0.9):       "-10.0%",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("formatted %q, want %q", got, want)
		}
	}
}

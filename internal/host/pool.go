package host

import (
	"time"

	"hfi/internal/faas"
)

// PoolConfig bounds each worker's warm-instance pool — the §6.3.1 story:
// warm reuse is the throughput win, but pools must not grow monotonically
// with the (tenant, config) set, and instances must be recycled with
// batched teardown rather than one madvise per instance.
type PoolConfig struct {
	// Cap is the maximum warm instances per worker; beyond it the
	// least-recently-used instance is evicted (0 = unbounded, the old
	// behaviour).
	Cap int
	// TTL evicts instances idle longer than this (0 = no TTL).
	TTL time.Duration
	// TeardownBatch defers evicted instances and tears them down in sweeps
	// of this size (default 8), amortizing the recycle cost the way
	// faas.TeardownBatched does on one machine. (Each instance here owns a
	// private simulated machine, so the batch is a deferred sweep rather
	// than one spanning madvise.)
	TeardownBatch int
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.TeardownBatch <= 0 {
		c.TeardownBatch = 8
	}
	return c
}

// poolEntry is one warm instance plus the state quarantine needs: the
// heap hash taken right after provisioning (the verified-reset baseline)
// and the last-use time (for TTL eviction).
type poolEntry struct {
	key      poolKey
	ti       *faas.TenantInstance
	baseline uint64
	lastUsed time.Time
	// dead marks an entry already evicted or discarded. Discard and evict
	// are idempotent through it: a substrate spot-check discard followed by
	// the quarantine path's discard (or an LRU eviction racing a discard in
	// the same worker) must tear the instance down exactly once — a double
	// teardown would double-count teardowns and batch the same instance
	// twice.
	dead bool
}

// instPool is a worker-private warm-instance pool with LRU/TTL eviction
// and deferred batched teardown. Nothing in it ever crosses goroutines;
// the server only sees its aggregate size through atomic counters.
type instPool struct {
	srv     *Server
	cfg     PoolConfig
	entries map[poolKey]*poolEntry
	order   []*poolEntry // LRU order: index 0 is the oldest
	pending []*faas.TenantInstance
}

func newInstPool(srv *Server) *instPool {
	return &instPool{
		srv:     srv,
		cfg:     srv.cfg.Pool.withDefaults(),
		entries: make(map[poolKey]*poolEntry),
	}
}

// get returns the warm entry for key (touching its LRU position) or nil.
// TTL-stale entries — this key's or any other's — are evicted first.
func (p *instPool) get(key poolKey, now time.Time) *poolEntry {
	p.sweepTTL(now)
	e := p.entries[key]
	if e == nil {
		return nil
	}
	e.lastUsed = now
	p.touch(e)
	return e
}

// put inserts a freshly provisioned instance, evicting the LRU entry if
// the pool is over capacity.
func (p *instPool) put(key poolKey, ti *faas.TenantInstance, baseline uint64, now time.Time) *poolEntry {
	e := &poolEntry{key: key, ti: ti, baseline: baseline, lastUsed: now}
	p.entries[key] = e
	p.order = append(p.order, e)
	p.srv.poolGrew(1)
	for p.cfg.Cap > 0 && len(p.entries) > p.cfg.Cap {
		// Oldest first; never the entry we just inserted (it is newest).
		p.evict(p.order[0])
		p.srv.evictions.Add(1)
	}
	return e
}

// discard removes a quarantined entry that failed reset verification; the
// instance is never reused and joins the pending teardown batch.
func (p *instPool) discard(e *poolEntry) {
	if e.dead {
		return
	}
	p.evict(e)
	p.srv.discarded.Add(1)
}

func (p *instPool) evict(e *poolEntry) {
	if e.dead {
		return
	}
	e.dead = true
	delete(p.entries, e.key)
	p.remove(e)
	p.pending = append(p.pending, e.ti)
	p.srv.poolGrew(-1)
	if len(p.pending) >= p.cfg.TeardownBatch {
		p.flush()
	}
}

// sweepTTL evicts entries idle past the TTL.
func (p *instPool) sweepTTL(now time.Time) {
	if p.cfg.TTL <= 0 {
		return
	}
	for len(p.order) > 0 && now.Sub(p.order[0].lastUsed) > p.cfg.TTL {
		p.evict(p.order[0])
		p.srv.evictions.Add(1)
	}
}

// flush tears down every pending evicted instance in one sweep.
func (p *instPool) flush() {
	for _, ti := range p.pending {
		ti.Inst.Teardown()
		p.srv.teardowns.Add(1)
	}
	p.pending = p.pending[:0]
}

// drain empties the pool at worker exit.
func (p *instPool) drain() {
	for len(p.order) > 0 {
		p.evict(p.order[0])
	}
	p.flush()
}

// touch moves e to the most-recently-used end.
func (p *instPool) touch(e *poolEntry) {
	p.remove(e)
	p.order = append(p.order, e)
}

func (p *instPool) remove(e *poolEntry) {
	for i, x := range p.order {
		if x == e {
			p.order = append(p.order[:i], p.order[i+1:]...)
			return
		}
	}
}

package httpfront

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"hfi/internal/stats"
)

// Client is the typed wire client every HFI tier uses to talk to a front
// (shard or router): context-aware Invoke/Statsz/Healthz/Drain over one
// reused connection pool, with the request-id contract handled in one
// place. It replaces the hand-rolled http.Post calls that used to be
// scattered across the load generator, -selfdrive, and the tests.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for base (e.g. "http://127.0.0.1:8080") with
// a dedicated keep-alive transport sized for open-loop load.
func NewClient(base string) *Client {
	return NewClientWith(base, &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
	})
}

// NewClientWith builds a client over a caller-supplied http.Client — the
// router uses this to interpose its chaos partition transport per shard.
func NewClientWith(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Base returns the server URL this client targets.
func (c *Client) Base() string { return c.base }

// InvokeResult is one invoke response, transport-error-free: the status
// code, the raw body (guest output on 200, the envelope bytes otherwise —
// kept raw so a router can relay them verbatim), the parsed envelope when
// one was present, and the echoed wire metadata.
type InvokeResult struct {
	Code int
	Body []byte
	// Envelope is the parsed ErrorEnvelope for non-2xx responses with a
	// JSON body; nil on 200 (and on malformed bodies, which keep Body).
	Envelope    *ErrorEnvelope
	RequestID   string // echoed RequestIDHeader
	RetryAfter  string // Retry-After header, "" if absent
	ContentType string
}

// Outcome folds the status code into its outcome class via OutcomeForCode.
func (r InvokeResult) Outcome() (stats.Outcome, bool) { return OutcomeForCode(r.Code) }

// Invoke runs one request against tenant. body may be nil (the tenant's
// synthetic stream); requestID, when non-empty, rides RequestIDHeader so
// duplicate (hedged) sends are collapsible downstream. A non-nil error is
// a transport failure — any HTTP status, including 5xx, returns nil error.
func (c *Client) Invoke(ctx context.Context, tenant string, body []byte, requestID string) (InvokeResult, error) {
	url := fmt.Sprintf("%s/v1/tenants/%s/invoke", c.base, tenant)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return InvokeResult{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if requestID != "" {
		req.Header.Set(RequestIDHeader, requestID)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return InvokeResult{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return InvokeResult{}, err
	}
	res := InvokeResult{
		Code:        resp.StatusCode,
		Body:        raw,
		RequestID:   resp.Header.Get(RequestIDHeader),
		RetryAfter:  resp.Header.Get("Retry-After"),
		ContentType: resp.Header.Get("Content-Type"),
	}
	if resp.StatusCode != http.StatusOK {
		var eb ErrorEnvelope
		if json.Unmarshal(raw, &eb) == nil && eb.Outcome != "" {
			res.Envelope = &eb
		}
	}
	return res, nil
}

// Statsz fetches and unmarshals the server's StatszV1.
func (c *Client) Statsz(ctx context.Context) (StatszV1, error) {
	var doc StatszV1
	code, err := c.getJSON(ctx, "/statsz", &doc)
	if err != nil {
		return StatszV1{}, err
	}
	if code != http.StatusOK {
		return StatszV1{}, fmt.Errorf("statsz: HTTP %d", code)
	}
	if doc.SchemaVersion != StatszSchemaVersion {
		return StatszV1{}, fmt.Errorf("statsz: schema_version %d, want %d", doc.SchemaVersion, StatszSchemaVersion)
	}
	return doc, nil
}

// Healthz probes readiness: (true, nil) on 200, (false, nil) on the
// documented 503 draining answer, error otherwise.
func (c *Client) Healthz(ctx context.Context) (bool, error) {
	code, err := c.getJSON(ctx, "/healthz", nil)
	if err != nil {
		return false, err
	}
	switch code {
	case http.StatusOK:
		return true, nil
	case http.StatusServiceUnavailable:
		return false, nil
	default:
		return false, fmt.Errorf("healthz: HTTP %d", code)
	}
}

// Drain POSTs /drainz, flipping the server into draining.
func (c *Client) Drain(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/drainz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("drainz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// CloseIdle releases the transport's pooled connections.
func (c *Client) CloseIdle() { c.hc.CloseIdleConnections() }

func (c *Client) getJSON(ctx context.Context, path string, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if v == nil || resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return resp.StatusCode, fmt.Errorf("decode %s: %w", path, err)
	}
	return resp.StatusCode, nil
}

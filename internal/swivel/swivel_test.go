package swivel

import (
	"testing"

	"hfi/internal/sfi"
	"hfi/internal/wasm"
)

func TestSwivelBloat(t *testing.T) {
	m := wasm.NewModule("b", 1, 1)
	f := m.Func("run", 0)
	v := f.NewReg()
	f.MovImm(v, 0)
	f.Label("l")
	f.AddImm(v, v, 1)
	f.BrImm(2 /* CondLT */, v, 100, "l")
	f.Ret(v)
	lay := wasm.Layout{CodeBase: 0x10000, HeapBase: 0x200000, StackBase: 0x100000,
		StackSize: 0x10000, GlobalBase: 0x120000}
	stock, err := wasm.Compile(m, sfi.GuardPages, lay, wasm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Compile(m, lay)
	if err != nil {
		t.Fatal(err)
	}
	if bloat := Bloat(stock, hard); bloat <= 1.0 {
		t.Fatalf("bloat = %.2f, want > 1", bloat)
	}
}

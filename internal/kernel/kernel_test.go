package kernel

import (
	"testing"
	"testing/quick"

	"hfi/internal/hfi"
	"hfi/internal/isa"
)

func TestAddressSpaceMapProtectUnmap(t *testing.T) {
	as := NewAddressSpace()
	base, err := as.Map(0x10000, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	if !as.CheckAccess(base, 8, ProtWrite) {
		t.Fatal("mapped range not writable")
	}
	if as.CheckAccess(base-0x1000, 1, ProtRead) {
		t.Fatal("unmapped range readable")
	}

	// Protect a middle window read-only; the carve must split the VMA.
	if _, err := as.Protect(base+0x4000, 0x2000, ProtRead); err != nil {
		t.Fatal(err)
	}
	if as.CheckAccess(base+0x4000, 8, ProtWrite) {
		t.Fatal("protected window still writable")
	}
	if !as.CheckAccess(base+0x4000, 8, ProtRead) {
		t.Fatal("protected window lost read")
	}
	if !as.CheckAccess(base, 8, ProtWrite) || !as.CheckAccess(base+0x6000, 8, ProtWrite) {
		t.Fatal("flanks lost write")
	}
	// An access straddling the protection change needs both permissions.
	if as.CheckAccess(base+0x4000-4, 8, ProtWrite) {
		t.Fatal("straddling access ignored the stricter half")
	}

	// Restore and coalesce, then unmap everything.
	if _, err := as.Protect(base+0x4000, 0x2000, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	if as.VMACount() != 1 {
		t.Fatalf("VMAs not coalesced: %d", as.VMACount())
	}
	if _, err := as.Unmap(base, 0x10000); err != nil {
		t.Fatal(err)
	}
	if _, ok := as.Prot(base); ok {
		t.Fatal("unmapped range still mapped")
	}
	if as.ReservedBytes() != 0 {
		t.Fatalf("reservation accounting leaked: %d", as.ReservedBytes())
	}
}

func TestMapAlignedAlignment(t *testing.T) {
	as := NewAddressSpace()
	prop := func(sizeBits, alignBits uint8) bool {
		size := uint64(1) << (12 + sizeBits%8)
		align := uint64(1) << (12 + alignBits%10)
		base, err := as.MapAligned(size, align, ProtRead)
		return err == nil && base%align == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMapFixedOverlapRejected(t *testing.T) {
	as := NewAddressSpace()
	if err := as.MapFixed(0x10000, 0x4000, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := as.MapFixed(0x12000, 0x1000, ProtRead); err == nil {
		t.Fatal("overlapping MapFixed accepted")
	}
	if err := as.MapFixed(0x14000, 0x1000, ProtRead); err != nil {
		t.Fatalf("adjacent MapFixed rejected: %v", err)
	}
}

func TestVAExhaustion(t *testing.T) {
	as := NewAddressSpace()
	// Reserve half the VA twice; the third must fail.
	if _, err := as.Map(1<<46, ProtNone); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Map(1<<46-1<<30, ProtNone); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Map(1<<30, ProtNone); err == nil {
		t.Fatal("address-space exhaustion not detected")
	}
}

func TestProtNoneBytesIn(t *testing.T) {
	as := NewAddressSpace()
	if err := as.MapFixed(0x100000, 0x10000, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.MapFixed(0x110000, 0x20000, ProtNone); err != nil {
		t.Fatal(err)
	}
	if err := as.MapFixed(0x130000, 0x10000, ProtRead); err != nil {
		t.Fatal(err)
	}
	if got := as.ProtNoneBytesIn(0x100000, 0x40000); got != 0x20000 {
		t.Fatalf("guard bytes = %#x, want 0x20000", got)
	}
	// Partial overlap with the guard region.
	if got := as.ProtNoneBytesIn(0x118000, 0x10000); got != 0x10000 {
		t.Fatalf("partial guard bytes = %#x", got)
	}
}

func TestMadviseCostsAndDiscard(t *testing.T) {
	clock := NewClock()
	k := New(clock)
	as := NewAddressSpace()
	if err := as.MapFixed(0x100000, 0x100000, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	as.Mem.Write(0x100000, 8, 0x1234)
	as.Mem.Write(0x180000, 8, 0x5678)

	t0 := clock.Now()
	k.Madvise(as, 0x100000, 0x100000)
	if clock.Now() == t0 {
		t.Fatal("madvise charged nothing")
	}
	if as.Mem.Read(0x100000, 8) != 0 || as.Mem.Read(0x180000, 8) != 0 {
		t.Fatal("madvise did not discard")
	}
	if p, ok := as.Prot(0x100000); !ok || p != ProtRead|ProtWrite {
		t.Fatal("madvise changed the mapping")
	}
}

func TestSyscallFileRoundtrip(t *testing.T) {
	clock := NewClock()
	k := New(clock)
	as := NewAddressSpace()
	if err := as.MapFixed(0x1000, 0x10000, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	k.FS["data.txt"] = []byte("the quick brown fox")
	as.Mem.WriteBytes(0x1000, []byte("data.txt"))

	var regs [isa.NumRegs]uint64
	// open
	regs[isa.R0] = SysOpen
	regs[isa.R1] = 0x1000
	regs[isa.R2] = 8
	k.Syscall(as, &regs)
	fd := regs[isa.R0]
	if int64(fd) < 3 {
		t.Fatalf("open returned %d", int64(fd))
	}
	// read into 0x2000
	regs[isa.R0] = SysRead
	regs[isa.R1] = fd
	regs[isa.R2] = 0x2000
	regs[isa.R3] = 9
	k.Syscall(as, &regs)
	if regs[isa.R0] != 9 {
		t.Fatalf("read returned %d", int64(regs[isa.R0]))
	}
	buf := make([]byte, 9)
	as.Mem.ReadBytes(0x2000, buf)
	if string(buf) != "the quick" {
		t.Fatalf("read %q", buf)
	}
	// close; then read must fail with EBADF
	regs[isa.R0] = SysClose
	regs[isa.R1] = fd
	k.Syscall(as, &regs)
	regs[isa.R0] = SysRead
	regs[isa.R1] = fd
	regs[isa.R2] = 0x2000
	regs[isa.R3] = 1
	k.Syscall(as, &regs)
	if regs[isa.R0] != negErrno(EBADF) {
		t.Fatalf("read on closed fd returned %d", int64(regs[isa.R0]))
	}
	// write to stdout
	regs[isa.R0] = SysWrite
	regs[isa.R1] = 1
	regs[isa.R2] = 0x2000
	regs[isa.R3] = 3
	k.Syscall(as, &regs)
	if string(k.ConsoleOut) != "the" {
		t.Fatalf("console = %q", k.ConsoleOut)
	}
}

type denyAll struct{ cost uint64 }

func (d denyAll) Check(sysno uint64, args [5]uint64) (bool, uint64) { return false, d.cost }

func TestSyscallFilterDeniesAndCharges(t *testing.T) {
	clock := NewClock()
	k := New(clock)
	k.Filter = denyAll{cost: 123}
	as := NewAddressSpace()
	var regs [isa.NumRegs]uint64
	regs[isa.R0] = SysGetTime
	t0 := clock.Now()
	k.Syscall(as, &regs)
	if regs[isa.R0] != negErrno(EACCES) {
		t.Fatalf("filtered syscall returned %d", int64(regs[isa.R0]))
	}
	if clock.Now()-t0 != 123 {
		t.Fatalf("filter cost %d, want 123", clock.Now()-t0)
	}
}

func TestContextSwitchSavesHFI(t *testing.T) {
	clock := NewClock()
	k := New(clock)
	h := hfi.NewState()
	if f := h.SetDataRegion(0, hfi.ImplicitRegion{BasePrefix: 0x10000, LSBMask: 0xffff, Read: true}); f != nil {
		t.Fatal(f)
	}
	h.Enter(hfi.Config{Hybrid: true})

	var regs [isa.NumRegs]uint64
	regs[isa.R3] = 77
	pc := uint64(0x1000)

	procA := &Process{Name: "a"}
	procB := &Process{Name: "b"} // fresh process: HFI disabled
	// Switch away from A (saving its HFI state) and into B.
	k.ContextSwitch(procA, procB, &regs, &pc, h)
	if h.Enabled {
		t.Fatal("process B inherited A's HFI mode")
	}
	if regs[isa.R3] != 0 {
		t.Fatal("register file not switched")
	}
	// Switch back: A's sandbox state must be restored exactly.
	k.ContextSwitch(procB, procA, &regs, &pc, h)
	if !h.Enabled || !h.Bank.Cfg.Hybrid {
		t.Fatal("A's HFI mode not restored")
	}
	if !h.Bank.Data[0].Valid || h.Bank.Data[0].BasePrefix != 0x10000 {
		t.Fatal("A's regions not restored")
	}
	if regs[isa.R3] != 77 {
		t.Fatal("A's registers not restored")
	}
}

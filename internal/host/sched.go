package host

import (
	"sort"
	"sync"
	"time"
)

// tenantQueue is one tenant's admission queue plus its scheduling state:
// the FIFO of pending calls, the DRR deficit, and the tenant's circuit
// breaker. All fields are guarded by the owning scheduler's mutex.
type tenantQueue struct {
	name    string
	pol     TenantPolicy
	q       []*call
	head    int // index of the front element in q
	deficit int // DRR deficit counter (requests this tenant may pop this round)
	inRing  bool
	br      *breaker
	served  uint64 // requests dispatched to workers (lifetime)
}

func (tq *tenantQueue) qlen() int { return len(tq.q) - tq.head }

func (tq *tenantQueue) push(c *call) { tq.q = append(tq.q, c) }

func (tq *tenantQueue) popFront() *call {
	c := tq.q[tq.head]
	tq.q[tq.head] = nil // drop reference for GC
	tq.head++
	if tq.head == len(tq.q) {
		tq.q = tq.q[:0]
		tq.head = 0
	}
	return c
}

// remove deletes one specific (cancelled) call wherever it sits in the
// queue, preserving FIFO order of the rest. O(depth), but cancellation of
// queued work is rare next to dispatch, and queues are bounded by
// TenantPolicy.QueueDepth anyway. Caller holds the scheduler's mutex.
func (tq *tenantQueue) remove(c *call) bool {
	for i := tq.head; i < len(tq.q); i++ {
		if tq.q[i] == c {
			copy(tq.q[i:], tq.q[i+1:])
			tq.q[len(tq.q)-1] = nil
			tq.q = tq.q[:len(tq.q)-1]
			if tq.head == len(tq.q) {
				tq.q = tq.q[:0]
				tq.head = 0
			}
			return true
		}
	}
	return false
}

// scheduler replaces the old single FIFO channel: per-tenant bounded
// queues dispatched to workers by deficit round-robin. One mutex guards
// admission, dispatch, and the per-tenant breakers, which is what makes
// the shed/enqueue accounting exact: the queue-full decision, the shed
// counter, and the enqueue are a single critical section, so the counters
// cannot lose or double-count a shed when the queue oscillates at
// capacity.
//
// DRR: tenants with queued work sit in a ring. A worker popping a request
// takes it from the current ring tenant, spending one unit of its deficit;
// when the deficit runs out the ring advances, and a tenant's deficit is
// replenished by quantum × weight on each new visit. Every tenant in the
// ring therefore dispatches at least quantum × weight requests per round
// no matter how deep any other tenant's backlog is — the no-starvation
// property the chaos soak asserts.
type scheduler struct {
	mu       sync.Mutex
	notEmpty sync.Cond // workers wait here for queued work
	notFull  sync.Cond // PolicyBlock submitters wait here for queue space

	tenants map[string]*tenantQueue
	ring    []*tenantQueue
	ringIdx int
	queued  int // total calls across all tenant queues
	rounds  uint64
	closed  bool

	cfg *Config
	srv *Server // owner; used to resolve dequeue-cancelled calls (nil in unit tests)
}

func newScheduler(cfg *Config) *scheduler {
	sc := &scheduler{tenants: make(map[string]*tenantQueue), cfg: cfg}
	sc.notEmpty.L = &sc.mu
	sc.notFull.L = &sc.mu
	return sc
}

// tenant returns (creating on first sight) the tenant's queue. Caller
// holds sc.mu.
func (sc *scheduler) tenant(name string) *tenantQueue {
	tq := sc.tenants[name]
	if tq == nil {
		tq = &tenantQueue{
			name: name,
			pol:  sc.cfg.tenantPolicy(name),
			br:   newBreaker(sc.cfg.Breaker),
		}
		sc.tenants[name] = tq
	}
	return tq
}

// enqueue appends a call to the tenant's queue and makes the tenant
// schedulable. Caller holds sc.mu.
func (sc *scheduler) enqueue(tq *tenantQueue, c *call) {
	tq.push(c)
	sc.queued++
	if !tq.inRing {
		tq.inRing = true
		tq.deficit = 0
		sc.ring = append(sc.ring, tq)
	}
	sc.notEmpty.Signal()
}

// next blocks until a call is available (returning it under DRR order) or
// the scheduler is closed and fully drained (ok=false). Workers loop on it.
// Dispatch is where a call stops being cancellable: the state flips to
// callDispatched and the settled channel closes (stopping the watcher)
// inside the same critical section that popped it, so the watcher can
// never unlink a call a worker already owns.
func (sc *scheduler) next() (*call, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for {
		if sc.queued > 0 {
			c := sc.pop()
			// A slot freed: wake blocked submitters (possibly of another
			// tenant — they re-check their own queue's occupancy).
			sc.notFull.Broadcast()
			if sc.srv != nil && c.ctx != nil && c.ctx.Err() != nil {
				// Dequeue-cancel backstop: ctx fired but this pop beat the
				// watcher to the lock. Resolve canceled here instead of
				// burning a worker on a request nobody is waiting for.
				sc.srv.resolveCanceledLocked(c)
				continue
			}
			c.state = callDispatched
			if c.settled != nil {
				close(c.settled)
			}
			return c, true
		}
		if sc.closed {
			return nil, false
		}
		sc.notEmpty.Wait()
	}
}

// pop removes the next call under deficit round-robin. Caller holds sc.mu
// and guarantees sc.queued > 0 (so the ring is non-empty).
func (sc *scheduler) pop() *call {
	tq := sc.ring[sc.ringIdx]
	if tq.deficit <= 0 {
		// New visit: replenish.
		tq.deficit = sc.cfg.quantum() * tq.pol.weight()
	}
	c := tq.popFront()
	sc.queued--
	tq.deficit--
	tq.served++
	if tq.qlen() == 0 {
		// Empty queues leave the ring; a classic DRR detail — the residual
		// deficit is forfeited so an idle tenant cannot bank credit.
		tq.inRing = false
		tq.deficit = 0
		sc.ringRemove(sc.ringIdx)
	} else if tq.deficit == 0 {
		sc.advance()
	}
	return c
}

func (sc *scheduler) ringRemove(i int) {
	sc.ring = append(sc.ring[:i], sc.ring[i+1:]...)
	if i < sc.ringIdx {
		// Removing an earlier ring slot shifted the current tenant left;
		// follow it so DRR order is unperturbed.
		sc.ringIdx--
	}
	if sc.ringIdx >= len(sc.ring) {
		sc.ringIdx = 0
		sc.rounds++
	}
}

// unlink removes a still-queued call from its tenant's queue (the
// cancellation path). Returns false if the call is no longer queued —
// a concurrent pop won the race. Caller holds sc.mu.
func (sc *scheduler) unlink(c *call) bool {
	tq := sc.tenants[c.req.Tenant.Name]
	if tq == nil || !tq.remove(c) {
		return false
	}
	sc.queued--
	if tq.inRing && tq.qlen() == 0 {
		tq.inRing = false
		tq.deficit = 0
		for i, r := range sc.ring {
			if r == tq {
				sc.ringRemove(i)
				break
			}
		}
	}
	return true
}

func (sc *scheduler) advance() {
	sc.ringIdx++
	if sc.ringIdx >= len(sc.ring) {
		sc.ringIdx = 0
		sc.rounds++
	}
}

// close marks the scheduler closed: no new admissions; queued work keeps
// draining; blocked submitters and idle workers wake.
func (sc *scheduler) close() {
	sc.mu.Lock()
	if !sc.closed {
		sc.closed = true
		sc.notEmpty.Broadcast()
		sc.notFull.Broadcast()
	}
	sc.mu.Unlock()
}

// reportOutcome feeds a served request's fate to the tenant's circuit
// breaker (sheds and rejections are not reported — they never probed the
// tenant's health).
func (sc *scheduler) reportOutcome(name string, failed bool, now time.Time) {
	sc.mu.Lock()
	if tq := sc.tenants[name]; tq != nil {
		tq.br.record(failed, now)
	}
	sc.mu.Unlock()
}

// breakerTrips sums lifetime breaker trips across tenants.
func (sc *scheduler) breakerTrips() uint64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	var n uint64
	for _, tq := range sc.tenants {
		n += tq.br.tripCount()
	}
	return n
}

// breakerStates snapshots every enabled tenant breaker under the
// scheduler mutex, sorted by tenant name.
func (sc *scheduler) breakerStates() []BreakerStatus {
	sc.mu.Lock()
	var out []BreakerStatus
	for _, tq := range sc.tenants {
		if tq.br == nil {
			continue
		}
		out = append(out, BreakerStatus{Tenant: tq.name, State: tq.br.state.String(), Trips: tq.br.trips})
	}
	sc.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// tenantServed reports how many of the tenant's requests have been
// dispatched to workers (a progress probe for fairness tests).
func (sc *scheduler) tenantServed(name string) uint64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if tq := sc.tenants[name]; tq != nil {
		return tq.served
	}
	return 0
}

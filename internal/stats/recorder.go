package stats

import "sync"

// Outcome classifies one request's fate for the serving recorder.
type Outcome uint8

// Request outcomes.
const (
	OutcomeOK       Outcome = iota // served, guest halted normally
	OutcomeTimeout                 // fuel budget exhausted (StopLimit)
	OutcomeFault                   // guest faulted or stopped abnormally
	OutcomeShed                    // rejected at admission (backpressure)
	// OutcomeRejected: the tenant's program failed static verification at
	// provisioning. Distinct from shed — a shed request would have been
	// safe to run but lost the capacity race; a rejected one was refused
	// on proof grounds and never touched a sandbox. Load tests key on the
	// distinction to assert no verified-then-escaped program exists.
	OutcomeRejected
)

var outcomeNames = [...]string{"ok", "timeout", "fault", "shed", "rejected"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "outcome(?)"
}

// Recorder accumulates per-request latencies and outcome counters from many
// goroutines — the measurement sink of the concurrent serving layer
// (internal/host). All methods are safe for concurrent use; Snapshot may be
// called while recording continues.
type Recorder struct {
	mu       sync.Mutex
	lats     []float64 // wall latencies (ns) of executed requests (ok+timeout+fault)
	ok       uint64
	timeouts uint64
	faults   uint64
	shed     uint64
	rejected uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record adds one request outcome. latNs is the wall-clock latency in
// nanoseconds; it is ignored for shed requests, which never executed.
func (r *Recorder) Record(o Outcome, latNs float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch o {
	case OutcomeOK:
		r.ok++
	case OutcomeTimeout:
		r.timeouts++
	case OutcomeFault:
		r.faults++
	case OutcomeShed:
		r.shed++
		return
	case OutcomeRejected:
		r.rejected++
		return
	}
	r.lats = append(r.lats, latNs)
}

// ServeSummary is a point-in-time view of a Recorder.
type ServeSummary struct {
	OK       uint64
	Timeouts uint64
	Faults   uint64
	Shed     uint64
	// Rejected counts requests refused because the tenant program failed
	// static verification (never executed, no latency sample).
	Rejected uint64

	MeanNs float64
	P50Ns  float64
	P99Ns  float64
	P999Ns float64
	MaxNs  float64

	// ThroughputRPS is executed requests per wall second over the elapsed
	// window handed to Snapshot (0 if elapsedNs <= 0).
	ThroughputRPS float64
	// ShedRate is shed / (executed + shed) — the 429 rate.
	ShedRate float64
}

// Executed counts requests that reached a sandbox (everything but sheds).
func (s ServeSummary) Executed() uint64 { return s.OK + s.Timeouts + s.Faults }

// Snapshot summarizes everything recorded so far. elapsedNs is the
// wall-clock window the throughput is computed over.
func (r *Recorder) Snapshot(elapsedNs float64) ServeSummary {
	r.mu.Lock()
	lats := append([]float64(nil), r.lats...)
	s := ServeSummary{OK: r.ok, Timeouts: r.timeouts, Faults: r.faults, Shed: r.shed, Rejected: r.rejected}
	r.mu.Unlock()

	if len(lats) > 0 {
		s.MeanNs = Mean(lats)
		s.P50Ns = Percentile(lats, 50)
		s.P99Ns = Percentile(lats, 99)
		s.P999Ns = Percentile(lats, 99.9)
		s.MaxNs = Max(lats)
	}
	if elapsedNs > 0 {
		s.ThroughputRPS = float64(s.Executed()) / (elapsedNs / 1e9)
	}
	if total := s.Executed() + s.Shed; total > 0 {
		s.ShedRate = float64(s.Shed) / float64(total)
	}
	return s
}

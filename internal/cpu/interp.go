package cpu

import (
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// CostModel is the per-instruction cycle cost model used by the functional
// interpreter — the analogue of the paper's compiler-based emulation, which
// approximates HFI costs with available instructions (appendix A.2). Costs
// are in millicycles (1/1000 cycle) so that superscalar throughputs below
// one cycle per instruction are expressible. The defaults are calibrated
// against the timing core on the Sightglass suite (Fig 2 reproduces the
// calibration experiment).
type CostModel struct {
	ALU    uint64 // simple integer op
	Mul    uint64
	Div    uint64
	Branch uint64 // average cost including prediction
	Load   uint64 // base load cost (L1-hit throughput)
	Store  uint64
	// MissScale is the percentage of additional memory latency (beyond
	// the L1 hit) charged to the run: the out-of-order core overlaps
	// most of a miss, the interpreter approximates that overlap.
	MissScale uint64

	Serialize uint64 // full pipeline drain (fence, serialized enter/exit)
	HfiBase   uint64 // non-memory part of an HFI config instruction
	HfiMove   uint64 // per 8-byte metadata move memory<->HFI registers
	Syscall   uint64 // core-side cost of a syscall instruction
	Redirect  uint64 // decode-stage syscall redirect (1 cycle, §4.4)
}

// DefaultCostModel returns the calibrated emulation cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		ALU:       400,
		Mul:       1_100,
		Div:       12_000,
		Branch:    900,
		Load:      1_100,
		Store:     800,
		MissScale: 35,
		Serialize: uint64(hfi.SerializeCycles) * 1000,
		HfiBase:   2_000,
		HfiMove:   1_500,
		Syscall:   60_000,
		Redirect:  1_000,
	}
}

// Interp is the functional execution engine. It shares the Machine's
// architectural state and accumulates cost in millicycles.
type Interp struct {
	M    *Machine
	Cost CostModel

	// UseCaches enables the cache hierarchy for load/store cost; when
	// false loads cost their base (pure-compute calibration runs).
	UseCaches bool

	milliCycles uint64
}

// NewInterp returns an interpreter over m with the default cost model and
// caches enabled.
func NewInterp(m *Machine) *Interp {
	return &Interp{M: m, Cost: DefaultCostModel(), UseCaches: true}
}

func (ip *Interp) charge(mc uint64) { ip.milliCycles += mc }

// chargeMem charges a memory access: base cost plus the scaled miss
// penalty from the hierarchy.
func (ip *Interp) chargeMem(addr uint64, store bool) {
	base := ip.Cost.Load
	if store {
		base = ip.Cost.Store
	}
	if !ip.UseCaches {
		ip.charge(base)
		return
	}
	var lat int
	if store {
		lat = ip.M.Hier.StoreLatency(addr)
	} else {
		lat = ip.M.Hier.LoadLatency(addr)
	}
	extra := 0
	if l1 := ip.M.Hier.Lat.L1; lat > l1 {
		extra = (lat - l1) * int(ip.Cost.MissScale) * 10 // % of a cycle -> millicycles
	}
	ip.charge(base + uint64(extra))
}

// Cycles returns whole cycles consumed since construction or the last
// ResetCost.
func (ip *Interp) Cycles() uint64 { return ip.milliCycles / 1000 }

// ResetCost zeroes the accumulated cost.
func (ip *Interp) ResetCost() { ip.milliCycles = 0 }

// syncClock folds accumulated cycle time into the kernel clock, so kernel
// cost (ns) and core cost (cycles) share one timeline.
func (ip *Interp) syncClock() {
	c := ip.Cycles()
	ip.milliCycles -= c * 1000
	ip.M.Cycles += c
	ip.M.Kern.Clock.AdvanceCycles(c, kernel.CoreGHz)
}

// Run executes from the machine's current PC until a stop condition or
// until maxInstrs instructions retire (0 = no limit).
func (ip *Interp) Run(maxInstrs uint64) RunResult {
	m := ip.M
	for n := uint64(0); maxInstrs == 0 || n < maxInstrs; n++ {
		if m.PC == HostReturn {
			ip.syncClock()
			return RunResult{Reason: StopHostReturn}
		}
		if f := m.HFI.CheckExec(m.PC); f != nil {
			if res, ok := ip.fault(m.PC, m.PC, f, false); !ok {
				return res
			}
			continue
		}
		in := m.FetchInstr(m.PC)
		if in == nil {
			if res, ok := ip.fault(m.PC, m.PC, nil, true); !ok {
				return res
			}
			continue
		}
		m.Instret++
		next := m.PC + isa.InstrBytes

		switch in.Op {
		case isa.OpNop:
			ip.charge(ip.Cost.ALU)
		case isa.OpHalt:
			ip.syncClock()
			return RunResult{Reason: StopHalt}

		case isa.OpMovImm:
			m.Regs[in.Rd] = uint64(in.Imm)
			ip.charge(ip.Cost.ALU)
		case isa.OpMov:
			m.Regs[in.Rd] = m.Regs[in.Rs1]
			ip.charge(ip.Cost.ALU)

		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
			isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv,
			isa.OpRem, isa.OpNot, isa.OpNeg:
			b := m.regVal(in.Rs2)
			if in.UseImm {
				b = uint64(in.Imm)
			}
			v, ok := aluOp(in.Op, m.Regs[in.Rs1], b)
			if in.W32 {
				v = uint64(uint32(v))
			}
			if !ok {
				if res, okc := ip.fault(m.PC, 0, nil, false); !okc {
					return res
				}
				continue
			}
			m.Regs[in.Rd] = v
			switch in.Op {
			case isa.OpMul:
				ip.charge(ip.Cost.Mul)
			case isa.OpDiv, isa.OpRem:
				ip.charge(ip.Cost.Div)
			default:
				ip.charge(ip.Cost.ALU)
			}

		case isa.OpLoad, isa.OpStore:
			addr := m.plainEA(in)
			write := in.Op == isa.OpStore
			if f := m.HFI.CheckData(addr, in.Size, write); f != nil {
				if res, ok := ip.fault(m.PC, addr, f, false); !ok {
					return res
				}
				continue
			}
			if !m.checkMMU(addr, in.Size, write) {
				if res, ok := ip.fault(m.PC, addr, nil, true); !ok {
					return res
				}
				continue
			}
			if m.MemHook != nil {
				m.MemHook(m.PC, addr, in.Size, write)
			}
			if write {
				m.Mem().Write(addr, in.Size, m.Regs[in.Rs3])
			} else {
				m.Regs[in.Rd] = m.loadValue(addr, in)
			}
			ip.chargeMem(addr, write)

		case isa.OpHLoad, isa.OpHStore:
			write := in.Op == isa.OpHStore
			addr, f := m.HFI.ExplicitEA(int(in.HReg), m.regVal(in.Rs2), in.Scale, in.Disp, in.Size, write)
			if f != nil {
				if res, ok := ip.fault(m.PC, addr, f, false); !ok {
					return res
				}
				continue
			}
			if !m.checkMMU(addr, in.Size, write) {
				if res, ok := ip.fault(m.PC, addr, nil, true); !ok {
					return res
				}
				continue
			}
			if m.MemHook != nil {
				m.MemHook(m.PC, addr, in.Size, write)
			}
			if write {
				m.Mem().Write(addr, in.Size, m.Regs[in.Rs3])
			} else {
				m.Regs[in.Rd] = m.loadValue(addr, in)
			}
			ip.chargeMem(addr, write)

		case isa.OpBr:
			b := m.regVal(in.Rs2)
			if in.UseImm {
				b = uint64(in.Imm)
			}
			if in.Cond.Eval(m.Regs[in.Rs1], b) {
				next = in.Target
			}
			ip.charge(ip.Cost.Branch)
		case isa.OpJmp:
			next = in.Target
			ip.charge(ip.Cost.Branch)
		case isa.OpJmpInd:
			next = m.Regs[in.Rs1]
			ip.charge(ip.Cost.Branch)
		case isa.OpCall, isa.OpCallInd:
			sp := m.Regs[isa.SP] - 8
			if !m.checkMMU(sp, 8, true) {
				if res, ok := ip.fault(m.PC, sp, nil, true); !ok {
					return res
				}
				continue
			}
			if m.MemHook != nil {
				m.MemHook(m.PC, sp, 8, true)
			}
			m.Mem().Write(sp, 8, next)
			m.Regs[isa.SP] = sp
			if in.Op == isa.OpCall {
				next = in.Target
			} else {
				next = m.Regs[in.Rs1]
			}
			ip.charge(ip.Cost.Branch + ip.Cost.Store)
		case isa.OpRet:
			sp := m.Regs[isa.SP]
			if !m.checkMMU(sp, 8, false) {
				if res, ok := ip.fault(m.PC, sp, nil, true); !ok {
					return res
				}
				continue
			}
			if m.MemHook != nil {
				m.MemHook(m.PC, sp, 8, false)
			}
			next = m.Mem().Read(sp, 8)
			m.Regs[isa.SP] = sp + 8
			ip.charge(ip.Cost.Branch + ip.Cost.Load)

		case isa.OpSyscall:
			ip.charge(ip.Cost.Syscall)
			ip.syncClock()
			serialized := m.HFI.Enabled && m.HFI.Bank.Cfg.Serialized && !m.HFI.SyscallAllowed()
			nxt, redirected, f := m.doSyscall(m.PC)
			if f != nil {
				if res, ok := ip.fault(m.PC, m.PC, f, false); !ok {
					return res
				}
				continue
			}
			if redirected {
				// The decode-stage redirect (§4.4) plus, for serialized
				// sandboxes, the exit drain.
				ip.charge(ip.Cost.Redirect)
				if serialized {
					ip.charge(ip.Cost.Serialize)
				}
			}
			next = nxt
			if m.Kern.Exited {
				m.PC = next
				ip.syncClock()
				return RunResult{Reason: StopExit}
			}

		case isa.OpFence:
			ip.charge(ip.Cost.Serialize)
		case isa.OpClflush:
			m.Hier.Flush(m.regVal(in.Rs1) + uint64(in.Disp))
			ip.charge(ip.Cost.ALU)
		case isa.OpRdtsc:
			ip.syncClock()
			m.Regs[in.Rd] = m.Cycles
			ip.charge(ip.Cost.ALU)

		case isa.OpHfiEnter:
			res, f := m.hfiEnter(m.Regs[in.Rs1])
			if f != nil {
				if r, ok := ip.fault(m.PC, m.Regs[in.Rs1], f, false); !ok {
					return r
				}
				continue
			}
			ip.charge(ip.Cost.HfiBase + uint64(res.RegionLoads)*uint64(hfi.RegionEntrySize/8)*ip.Cost.HfiMove)
			if res.Serialize {
				ip.charge(ip.Cost.Serialize)
			}
		case isa.OpHfiExit:
			res := m.HFI.Exit()
			ip.charge(ip.Cost.HfiBase)
			if res.Serialize {
				ip.charge(ip.Cost.Serialize)
			}
			if res.Handler != 0 {
				m.LastExitPC = m.PC + isa.InstrBytes
				next = res.Handler
			}
		case isa.OpHfiReenter:
			res, f := m.HFI.Reenter()
			if f != nil {
				if r, ok := ip.fault(m.PC, 0, f, false); !ok {
					return r
				}
				continue
			}
			ip.charge(ip.Cost.HfiBase)
			if res.Serialize {
				ip.charge(ip.Cost.Serialize)
			}

		case isa.OpHfiSetRegion, isa.OpHfiGetRegion, isa.OpHfiClearRegion, isa.OpHfiClearAll:
			serialize := m.HFI.RegionUpdateSerializes()
			moves, f := m.hfiMicro(in)
			if f != nil {
				if r, ok := ip.fault(m.PC, 0, f, false); !ok {
					return r
				}
				continue
			}
			ip.charge(ip.Cost.HfiBase + uint64(moves)*ip.Cost.HfiMove)
			if serialize {
				ip.charge(ip.Cost.Serialize)
			}

		case isa.OpXsave:
			if !m.HFI.PrivilegedAllowed() {
				f := m.HFI.PrivFault(m.PC)
				if r, ok := ip.fault(m.PC, m.PC, f, false); !ok {
					return r
				}
				continue
			}
			img := m.HFI.Xsave()
			m.Mem().WriteBytes(m.Regs[in.Rs1], img[:])
			ip.charge(ip.Cost.Serialize)
		case isa.OpXrstor:
			if !m.HFI.PrivilegedAllowed() {
				// A native sandbox restoring HFI registers would break
				// sandboxing; HFI traps (§3.3.3).
				f := m.HFI.PrivFault(m.PC)
				if r, ok := ip.fault(m.PC, m.PC, f, false); !ok {
					return r
				}
				continue
			}
			buf := make([]byte, hfi.XsaveSize)
			m.Mem().ReadBytes(m.Regs[in.Rs1], buf)
			m.HFI.Xrstor(buf)
			ip.charge(ip.Cost.Serialize)

		default:
			if res, ok := ip.fault(m.PC, m.PC, nil, false); !ok {
				return res
			}
			continue
		}
		m.PC = next
	}
	ip.syncClock()
	return RunResult{Reason: StopLimit}
}

// fault routes a fault through the signal path. If the handler supplies a
// resume PC, execution continues there and fault returns ok=true;
// otherwise it returns the final RunResult with ok=false.
func (ip *Interp) fault(pc, addr uint64, f *hfi.Fault, pageFault bool) (RunResult, bool) {
	ip.syncClock()
	resume := ip.M.raiseFault(pc, addr, f)
	if resume == 0 {
		return RunResult{Reason: StopFault, Fault: f, PageFault: pageFault, FaultAddr: addr, FaultPC: pc}, false
	}
	ip.M.PC = resume
	return RunResult{}, true
}

// Package hfi models the Hardware-assisted Fault Isolation ISA extension —
// the paper's primary contribution (§3, §4, appendix A.1).
//
// The package is the "hardware": a per-core register file of region
// descriptors plus the configuration, exit-handler and exit-reason (MSR)
// registers, together with the checking logic that the execution engines in
// internal/cpu invoke on every memory access, instruction fetch, and system
// call while HFI mode is enabled.
//
// Regions come in two families:
//
//   - Implicit regions apply to every ordinary load/store (data regions) or
//     instruction fetch (code regions). They are power-of-two sized and
//     aligned and are checked by prefix matching: (addr &^ lsbMask) ==
//     basePrefix, a masked equality the hardware implements with an AND gate
//     and a 64-bit comparator per region.
//
//   - Explicit regions are (base, bound) handles accessed only through the
//     hmov instructions. Large regions are 64 KiB granular and may span up
//     to 256 TiB; small regions are byte granular up to 4 GiB and must not
//     cross a 4 GiB boundary. These constraints let hardware check bounds
//     with a single 32-bit comparator plus sign/overflow bit checks (§4.2).
//
// One deviation from the paper's prose is documented here rather than
// hidden: the paper does not specify how a child sandbox's region registers
// are populated when hfi_enter runs with switch-on-exit (the parent's
// registers still hold the parent's regions at that point). We give the
// sandbox_t structure an optional regions pointer; hfi_enter microcode loads
// the child's region descriptors from memory after saving the parent bank.
// This also directly models the Fig 5 observation that HFI "must move region
// metadata from memory to HFI registers on each transition".
package hfi

import "fmt"

// Architectural region counts (§3.2: "HFI provides six implicit regions
// per-sandbox, four data regions and two code regions" plus four explicit
// regions).
const (
	NumCodeRegions     = 2
	NumDataRegions     = 4
	NumExplicitRegions = 4
	// NumRegions is the total number of region registers, addressed
	// 0-1 (code), 2-5 (implicit data), 6-9 (explicit data) as in the
	// appendix A.1 numbering.
	NumRegions = NumCodeRegions + NumDataRegions + NumExplicitRegions
)

// Region-number bases for the flat 0..NumRegions-1 numbering.
const (
	RegionCodeBase     = 0
	RegionDataBase     = NumCodeRegions
	RegionExplicitBase = NumCodeRegions + NumDataRegions
)

// Explicit-region architectural limits (§3.2, §4.2).
const (
	// LargeRegionAlign is the size/alignment granule of large explicit
	// regions (64 KiB), matching Wasm's memory.grow granularity.
	LargeRegionAlign = 1 << 16
	// LargeRegionMaxBound caps large regions at 256 TiB (2^48).
	LargeRegionMaxBound = 1 << 48
	// SmallRegionMaxBound caps small regions at 4 GiB (2^32).
	SmallRegionMaxBound = 1 << 32
)

// SerializeCycles is the modeled cost of a serialized hfi_enter/hfi_exit,
// within the paper's expected 30-60 cycle range for cpuid-like instructions.
const SerializeCycles = 40

// ImplicitRegion is a prefix-matched region register pair (base_prefix,
// lsb_mask) with permissions. Code regions use only Exec; data regions use
// Read/Write (§3.2 discriminates the two to keep pipelines simple).
type ImplicitRegion struct {
	BasePrefix uint64
	LSBMask    uint64
	Read       bool
	Write      bool
	Exec       bool
	Valid      bool
}

// Contains reports whether addr falls inside the region: the hardware
// prefix check (addr &^ LSBMask) == BasePrefix.
func (r *ImplicitRegion) Contains(addr uint64) bool {
	return r.Valid && addr&^r.LSBMask == r.BasePrefix
}

// Size returns the region size in bytes.
func (r *ImplicitRegion) Size() uint64 { return r.LSBMask + 1 }

// Validate checks the power-of-two size/alignment constraints: LSBMask must
// be of the form 2^k - 1 and BasePrefix must be aligned to the region size.
func (r *ImplicitRegion) Validate() error {
	if r.LSBMask&(r.LSBMask+1) != 0 {
		return fmt.Errorf("hfi: lsb_mask %#x is not of the form 2^k-1", r.LSBMask)
	}
	if r.BasePrefix&r.LSBMask != 0 {
		return fmt.Errorf("hfi: base_prefix %#x not aligned to region size %#x", r.BasePrefix, r.LSBMask+1)
	}
	return nil
}

// ExplicitRegion is a (base, bound) handle accessed via hmov. Bound is the
// region size in bytes; valid offsets are [0, Bound).
type ExplicitRegion struct {
	Base  uint64
	Bound uint64
	Read  bool
	Write bool
	Large bool
	Valid bool
}

// Validate checks the large/small constraints from §3.2:
// large regions are 64 KiB aligned and sized, up to 256 TiB; small regions
// are byte granular up to 4 GiB and must not span a 4 GiB boundary.
func (r *ExplicitRegion) Validate() error {
	if r.Large {
		if r.Base%LargeRegionAlign != 0 {
			return fmt.Errorf("hfi: large region base %#x not 64KiB aligned", r.Base)
		}
		if r.Bound%LargeRegionAlign != 0 {
			return fmt.Errorf("hfi: large region bound %#x not a 64KiB multiple", r.Bound)
		}
		if r.Bound > LargeRegionMaxBound {
			return fmt.Errorf("hfi: large region bound %#x exceeds 256TiB", r.Bound)
		}
		return nil
	}
	if r.Bound > SmallRegionMaxBound {
		return fmt.Errorf("hfi: small region bound %#x exceeds 4GiB", r.Bound)
	}
	if r.Bound > 0 && r.Base>>32 != (r.Base+r.Bound-1)>>32 {
		return fmt.Errorf("hfi: small region [%#x,%#x) spans a 4GiB boundary", r.Base, r.Base+r.Bound)
	}
	return nil
}

// Config is the sandbox_t parameter block of hfi_enter (appendix A.1), plus
// the regions pointer documented in the package comment.
type Config struct {
	Hybrid       bool   // is_hybrid: trusted-compiler sandbox, privileged ops allowed
	Serialized   bool   // is_serialized: serialize enter/exit against Spectre
	SwitchOnExit bool   // switch_on_exit: bank-swap extension (§4.5)
	ExitHandler  uint64 // if nonzero, interpose on hfi_exit (and syscalls in native sandboxes)
	RegionsPtr   uint64 // if nonzero, guest address of a region descriptor table loaded on enter
	RegionCount  uint64 // number of descriptors at RegionsPtr
}

// ExitReason enumerates the MSR-recorded causes of leaving (or faulting
// inside) a sandbox (§3.3.2, §4.4).
type ExitReason uint8

// Exit reasons.
const (
	ExitNone              ExitReason = iota
	ExitInstruction                  // explicit hfi_exit
	ExitSyscall                      // syscall redirected to the exit handler (native)
	FaultDataBounds                  // load/store outside every implicit data region
	FaultDataPerm                    // first-matching region lacks the permission
	FaultCodeBounds                  // instruction fetch outside code regions
	FaultExplicitBounds              // hmov effective address outside region bound
	FaultExplicitPerm                // hmov against region without permission
	FaultExplicitNegative            // hmov with negative index or displacement
	FaultExplicitOverflow            // hmov effective-address computation overflowed
	FaultExplicitInvalid             // hmov against an invalid (cleared) region
	FaultPrivileged                  // privileged operation in a native sandbox
	FaultBadConfig                   // malformed region descriptor or sandbox_t
)

var exitReasonNames = [...]string{
	"none", "hfi_exit", "syscall",
	"data-bounds", "data-perm", "code-bounds",
	"explicit-bounds", "explicit-perm", "explicit-negative",
	"explicit-overflow", "explicit-invalid", "privileged", "bad-config",
}

func (r ExitReason) String() string {
	if int(r) < len(exitReasonNames) {
		return exitReasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// IsFault reports whether the reason is a fault (delivered as a hardware
// trap / signal) rather than a voluntary exit.
func (r ExitReason) IsFault() bool { return r >= FaultDataBounds }

// Fault describes a failed HFI check. Faults atomically disable the sandbox
// and are delivered by the OS as a signal to the trusted runtime, which can
// read the MSR to disambiguate the cause (§3.3.2).
type Fault struct {
	Reason ExitReason
	Addr   uint64 // faulting effective address (or PC for code faults)
	Write  bool
}

func (f *Fault) Error() string {
	rw := "read"
	if f.Write {
		rw = "write"
	}
	return fmt.Sprintf("hfi fault: %s at %#x (%s)", f.Reason, f.Addr, rw)
}

// Bank is one complete set of HFI metadata registers: 10 regions at 2
// registers each, the exit handler register, and the configuration register
// — the paper's 22 internal 64-bit registers. The switch-on-exit extension
// doubles this to two banks.
type Bank struct {
	Code [NumCodeRegions]ImplicitRegion
	Data [NumDataRegions]ImplicitRegion
	Expl [NumExplicitRegions]ExplicitRegion
	Cfg  Config
}

// State is the per-core HFI architectural state.
type State struct {
	Enabled bool
	Bank    Bank

	// Gen counts state transitions that can change the outcome of a data
	// access check: enter/exit/reenter, region writes, xrstor, faults, and
	// reset. Execution engines that cache access decisions (the
	// interpreter's 1-entry data-translation cache) tag each cached entry
	// with the Gen it was derived under and treat any mismatch as a flush,
	// so no transition can leave a stale positive decision live.
	// AuditTag is the corresponding cross-audit: a tag ahead of Gen is
	// impossible state, the residue a suppressed invalidation leaves.
	Gen uint64

	// MSR holds the cause of the last exit or fault, readable by the
	// trusted runtime's exit handler or signal handler.
	MSR     ExitReason
	MSRInfo uint64 // syscall number or faulting address

	// saved is the second register bank used by switch-on-exit: it holds
	// the trusted runtime's sandbox while a child runs.
	saved      Bank
	savedValid bool

	// last remembers the most recently exited sandbox for hfi_reenter.
	last      Bank
	lastValid bool

	// Metrics.
	ChecksData    uint64
	ChecksCode    uint64
	ChecksExpl    uint64
	Faults        uint64
	Enters        uint64
	Exits         uint64
	RegionUpdates uint64
}

// NewState returns HFI state with the extension present but disabled.
func NewState() *State { return &State{} }

// Reset returns the state to power-on: disabled, all regions invalid. Gen
// keeps advancing across resets so cached decisions from before the reset
// can never alias a post-reset generation.
func (s *State) Reset() {
	gen := s.Gen
	*s = State{}
	s.Gen = gen + 1
}

// AuditTag reports whether a cached generation tag could legitimately have
// been issued by this state. Tags are copies of Gen taken at cache-fill
// time and Gen is monotone, so a tag from the future (tag > Gen) is
// impossible in a correct system: it is the signature left behind when an
// invalidation was suppressed and a cached decision claims a freshness HFI
// never granted. The substrate cross-audits use this to turn a
// stale-translation plant into a typed fault instead of a silent wrong
// answer.
func (s *State) AuditTag(tag uint64) bool { return tag <= s.Gen }

// regionKind classifies a flat region number.
func regionKind(n int) (kind string, idx int, err error) {
	switch {
	case n >= RegionCodeBase && n < RegionCodeBase+NumCodeRegions:
		return "code", n - RegionCodeBase, nil
	case n >= RegionDataBase && n < RegionDataBase+NumDataRegions:
		return "data", n - RegionDataBase, nil
	case n >= RegionExplicitBase && n < RegionExplicitBase+NumExplicitRegions:
		return "explicit", n - RegionExplicitBase, nil
	}
	return "", 0, fmt.Errorf("hfi: region number %d out of range [0,%d)", n, NumRegions)
}

// regionsLocked reports whether region registers are currently immutable:
// native sandboxes lock all region registers from hfi_enter until exit
// (§3.3.1).
func (s *State) regionsLocked() bool { return s.Enabled && !s.Bank.Cfg.Hybrid }

// SetCodeRegion programs implicit code region idx. Returns a privilege
// fault if regions are locked, or a bad-config fault for invalid geometry.
func (s *State) SetCodeRegion(idx int, r ImplicitRegion) *Fault {
	if s.regionsLocked() {
		return s.fault(FaultPrivileged, 0, false)
	}
	if idx < 0 || idx >= NumCodeRegions {
		return s.fault(FaultBadConfig, 0, false)
	}
	if err := r.Validate(); err != nil {
		return s.fault(FaultBadConfig, r.BasePrefix, false)
	}
	r.Valid = true
	r.Read, r.Write = false, false // code regions carry only Exec
	s.Bank.Code[idx] = r
	s.RegionUpdates++
	s.Gen++
	return nil
}

// SetDataRegion programs implicit data region idx.
func (s *State) SetDataRegion(idx int, r ImplicitRegion) *Fault {
	if s.regionsLocked() {
		return s.fault(FaultPrivileged, 0, false)
	}
	if idx < 0 || idx >= NumDataRegions {
		return s.fault(FaultBadConfig, 0, false)
	}
	if err := r.Validate(); err != nil {
		return s.fault(FaultBadConfig, r.BasePrefix, false)
	}
	r.Valid = true
	r.Exec = false // data regions never grant execute
	s.Bank.Data[idx] = r
	s.RegionUpdates++
	s.Gen++
	return nil
}

// SetExplicitRegion programs explicit region idx.
func (s *State) SetExplicitRegion(idx int, r ExplicitRegion) *Fault {
	if s.regionsLocked() {
		return s.fault(FaultPrivileged, 0, false)
	}
	if idx < 0 || idx >= NumExplicitRegions {
		return s.fault(FaultBadConfig, 0, false)
	}
	if err := r.Validate(); err != nil {
		return s.fault(FaultBadConfig, r.Base, false)
	}
	r.Valid = true
	s.Bank.Expl[idx] = r
	s.RegionUpdates++
	s.Gen++
	return nil
}

// ClearRegion invalidates region n (flat numbering).
func (s *State) ClearRegion(n int) *Fault {
	if s.regionsLocked() {
		return s.fault(FaultPrivileged, 0, false)
	}
	kind, idx, err := regionKind(n)
	if err != nil {
		return s.fault(FaultBadConfig, 0, false)
	}
	switch kind {
	case "code":
		s.Bank.Code[idx] = ImplicitRegion{}
	case "data":
		s.Bank.Data[idx] = ImplicitRegion{}
	case "explicit":
		s.Bank.Expl[idx] = ExplicitRegion{}
	}
	s.RegionUpdates++
	s.Gen++
	return nil
}

// ClearAllRegions invalidates every region register.
func (s *State) ClearAllRegions() *Fault {
	if s.regionsLocked() {
		return s.fault(FaultPrivileged, 0, false)
	}
	s.Bank.Code = [NumCodeRegions]ImplicitRegion{}
	s.Bank.Data = [NumDataRegions]ImplicitRegion{}
	s.Bank.Expl = [NumExplicitRegions]ExplicitRegion{}
	s.RegionUpdates++
	s.Gen++
	return nil
}

// fault records the reason in the MSR, disables the sandbox (faults always
// leave HFI mode; the OS then delivers a signal to the runtime), and
// returns the Fault for the execution engine to raise.
func (s *State) fault(reason ExitReason, addr uint64, write bool) *Fault {
	s.Faults++
	s.Gen++
	s.MSR = reason
	s.MSRInfo = addr
	if s.Enabled {
		s.last = s.Bank
		s.lastValid = true
		s.Enabled = false
		s.savedValid = false
	}
	return &Fault{Reason: reason, Addr: addr, Write: write}
}

// FaaS example: a multi-tenant function-as-a-service platform (§6.3,
// Table 1) serving the four paper workloads, comparing unprotected Lucet,
// HFI-protected, and Swivel-hardened configurations, then demonstrating
// HFI's lifecycle advantages: batched teardown and guard-free scaling.
//
//	go run ./examples/faas
package main

import (
	"fmt"
	"log"

	"hfi/internal/faas"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/workloads"
)

func main() {
	fmt.Println("== Multi-tenant FaaS: Spectre protection vs tail latency ==")
	configs := []faas.Config{faas.StockLucet(), faas.LucetHFI(), faas.LucetSwivel()}
	for _, tenant := range workloads.FaaSTenants() {
		n := 20
		if tenant.Name == "image-classification" {
			n = 6
		}
		fmt.Printf("\ntenant %s:\n", tenant.Name)
		var base float64
		for _, cfg := range configs {
			r, err := faas.ServeTenant(tenant, cfg, n)
			if err != nil {
				log.Fatal(err)
			}
			if base == 0 {
				base = r.TailLatNs
			}
			fmt.Printf("  %-14s avg %-10s p99 %-10s %8.1f req/s  bin %-8s tail %+5.1f%%\n",
				cfg.Name, stats.Ns(r.AvgLatNs), stats.Ns(r.TailLatNs),
				r.Throughput, stats.Bytes(float64(r.BinBytes)),
				(r.TailLatNs/base-1)*100)
		}
	}

	fmt.Println("\n== Sandbox lifecycle: teardown batching (§6.3.1) ==")
	for _, v := range []struct {
		name  string
		style faas.TeardownStyle
		batch int
	}{
		{"stock: one madvise per sandbox", faas.TeardownStock, 1},
		{"HFI: batched, guards elided", faas.TeardownBatchedHFI, 50},
		{"batched across guard pages", faas.TeardownBatched, 50},
	} {
		r, err := faas.MeasureTeardown(v.style, 400, v.batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s %s per sandbox\n", v.name, stats.Ns(r.PerSandboxNs))
	}

	fmt.Println("\n== Scalability: 1 GiB sandboxes per process (§6.3.2) ==")
	for _, scheme := range []sfi.Scheme{sfi.GuardPages, sfi.HFI} {
		r, err := faas.MeasureScaling(scheme, 1, 2048)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if r.Extrapolated {
			extra = " (extrapolated from reserved-VA accounting)"
		}
		fmt.Printf("  %-12v %s reserved each -> %d sandboxes%s\n",
			scheme, stats.Bytes(float64(r.ReservedPerSbox)), r.CapacityCount, extra)
	}
}

package cpu

import (
	"testing"

	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// runCycles executes a program fragment on the interpreter and returns the
// simulated nanoseconds consumed.
func runNs(t *testing.T, setup func(m *Machine), build func(b *isa.Builder)) uint64 {
	t.Helper()
	m := NewMachine()
	if err := m.AS.MapFixed(0x100000, 0x10000, kernel.ProtRead|kernel.ProtWrite); err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(m)
	}
	b := isa.NewBuilder(0x1000)
	build(b)
	b.Halt()
	m.MustLoadProgram(b.Build())
	m.PC = 0x1000
	clock := m.Kern.Clock
	t0 := clock.Now()
	if res := NewInterp(m).Run(0); res.Reason != StopHalt {
		t.Fatalf("stop = %v", res.Reason)
	}
	return clock.Now() - t0
}

// TestInterpSerializationCost: a serialized enter/exit pair costs the
// modeled pipeline drains over an unserialized pair.
func TestInterpSerializationCost(t *testing.T) {
	cost := func(serialized bool) uint64 {
		return runNs(t, func(m *Machine) {
			if f := m.HFI.SetCodeRegion(0, hfi.ImplicitRegion{
				BasePrefix: 0x1000, LSBMask: 0xfff, Exec: true,
			}); f != nil {
				t.Fatal(f)
			}
			cfg := hfi.Config{Hybrid: true, Serialized: serialized}
			sb := hfi.EncodeSandboxT(cfg)
			m.Mem().WriteBytes(0x100100, sb[:])
		}, func(b *isa.Builder) {
			b.MovImm(isa.R6, 0x100100)
			b.HfiEnter(isa.R6)
			b.HfiExit()
		})
	}
	plain := cost(false)
	ser := cost(true)
	// Two drains at hfi.SerializeCycles each, at kernel.CoreGHz.
	wantExtra := kernel.CyclesToNs(2 * hfi.SerializeCycles)
	if extra := ser - plain; extra < wantExtra*8/10 || extra > wantExtra*12/10 {
		t.Fatalf("serialization cost %dns, want ~%dns", extra, wantExtra)
	}
}

// TestInterpClflushEffect: flushing a line makes the next load pay a miss.
func TestInterpClflushEffect(t *testing.T) {
	warm := runNs(t, nil, func(b *isa.Builder) {
		b.MovImm(isa.R1, 0x100040)
		b.Load(8, isa.R2, isa.R1, isa.RegNone, 1, 0) // cold fill
		b.Load(8, isa.R2, isa.R1, isa.RegNone, 1, 0) // warm
	})
	flushed := runNs(t, nil, func(b *isa.Builder) {
		b.MovImm(isa.R1, 0x100040)
		b.Load(8, isa.R2, isa.R1, isa.RegNone, 1, 0)
		b.Clflush(isa.R1, 0)
		b.Load(8, isa.R2, isa.R1, isa.RegNone, 1, 0) // must miss again
	})
	if flushed <= warm {
		t.Fatalf("clflush had no cost effect: warm=%dns flushed=%dns", warm, flushed)
	}
}

// TestInterpFenceCost: fence charges the serialization penalty.
func TestInterpFenceCost(t *testing.T) {
	without := runNs(t, nil, func(b *isa.Builder) { b.Nop() })
	with := runNs(t, nil, func(b *isa.Builder) { b.Fence() })
	wantExtra := kernel.CyclesToNs(hfi.SerializeCycles)
	if extra := with - without; extra < wantExtra*8/10 {
		t.Fatalf("fence cost %dns, want >= ~%dns", extra, wantExtra)
	}
}

// Native-sandbox example (§3.3, §6.4): run an unmodified native binary —
// no recompilation, no instrumentation — inside an HFI native sandbox.
// Implicit regions confine its loads, stores and fetches; every system
// call redirects to the trusted runtime's exit handler, which enforces an
// allow-list policy before servicing it. Out-of-region accesses fault
// with the cause recorded in the MSR.
//
//	go run ./examples/nativesandbox
package main

import (
	"fmt"
	"log"

	"hfi/internal/cpu"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/sandbox"
)

// buildGuest assembles the "unmodified binary": it writes a greeting with
// the write() syscall, tries to read a file, then pokes memory outside
// its data region (which HFI traps), all with ordinary instructions.
func buildGuest(codeBase, dataBase uint64) *isa.Program {
	b := isa.NewBuilder(codeBase)
	b.Label("main")
	// write(1, msg, len)
	b.MovImm(isa.R0, kernel.SysWrite)
	b.MovImm(isa.R1, 1)
	b.MovImm(isa.R2, int64(dataBase))
	b.MovImm(isa.R3, 30)
	b.Syscall()
	// open("/etc/shadow") — the policy will deny this one.
	b.MovImm(isa.R0, kernel.SysOpen)
	b.MovImm(isa.R1, int64(dataBase+64))
	b.MovImm(isa.R2, 11)
	b.Syscall()
	b.Mov(isa.R9, isa.R0) // save the errno-style result
	// Store the result at data+128 where the host can read it (R1 still
	// holds data+64).
	b.Store(8, isa.R1, isa.RegNone, 1, 64, isa.R9)
	// Now misbehave: write far outside the data region.
	b.MovImm(isa.R1, 0x1234_5000)
	b.MovImm(isa.R2, 0x41)
	b.Store(8, isa.R1, isa.RegNone, 1, 0, isa.R2)
	// Never reached: HFI faulted on the wild store.
	b.MovImm(isa.R0, kernel.SysExit)
	b.MovImm(isa.R1, 0)
	b.Syscall()
	b.Halt()
	return b.Build()
}

func main() {
	rt := sandbox.NewRuntime()
	m := rt.M

	var dataBase uint64
	ns, err := rt.NewNative(4096, 64<<10, true /* serialized enter/exit */, func(code, data uint64) *isa.Program {
		dataBase = data
		return buildGuest(code, data)
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Mem().WriteBytes(dataBase, []byte("hello from the native sandbox\n"))
	m.Mem().WriteBytes(dataBase+64, []byte("/etc/shadow"))

	// Syscall policy: console output only.
	ns.Policy = func(sysno uint64, args [5]uint64) bool {
		switch sysno {
		case kernel.SysWrite, kernel.SysExit:
			return true
		}
		return false
	}

	// The wild store arrives as a SIGSEGV-like signal with the HFI MSR
	// explaining the cause (§3.3.2).
	m.Kern.Sigsegv = func(info kernel.SigInfo) uint64 {
		fmt.Printf("signal: HFI fault %v at %#x (pc %#x) — terminating sandbox\n",
			info.HFIReason, info.Addr, info.PC)
		return 0 // do not resume
	}

	res := ns.Run(cpu.NewInterp(m), 0)
	fmt.Printf("sandbox stopped: %v\n", res.Reason)
	fmt.Printf("console captured: %q\n", string(m.Kern.ConsoleOut))
	fmt.Printf("syscalls interposed: %d (denied by policy: %d)\n", ns.Interposed, ns.Denied)
	openResult := int64(m.Mem().Read(dataBase+128, 8))
	fmt.Printf("guest's open() observed: %d (EACCES is %d)\n", openResult, -kernel.EACCES)
	reason, addr := m.HFI.ReadMSR()
	fmt.Printf("MSR after fault: %v (info %#x)\n", reason, addr)
}

package host

import (
	"testing"

	"hfi/internal/workloads"
)

// fill enqueues n requests for the named tenant (no workers are running in
// these tests, so calls just accumulate).
func fill(sc *scheduler, name string, n int) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	tq := sc.tenant(name)
	for i := 0; i < n; i++ {
		c := &call{req: NewRequest(name, uint64(i), WithWorkload(workloads.Tenant{Name: name})),
			state: callQueued}
		sc.enqueue(tq, c)
	}
}

// drainOrder pops everything and returns the tenant order.
func drainOrder(sc *scheduler) []string {
	var order []string
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for sc.queued > 0 {
		c := sc.pop()
		order = append(order, c.req.Tenant.Name)
	}
	return order
}

// TestDRRWeightedShares: with weights 1:3 and equal backlogs, each round
// dispatches exactly weight × quantum requests per tenant — the precise
// DRR schedule, not a statistical approximation.
func TestDRRWeightedShares(t *testing.T) {
	cfg := &Config{QueueDepth: 1000, Workers: 1,
		Tenants: map[string]TenantPolicy{"b": {Weight: 3}}}
	sc := newScheduler(cfg)
	fill(sc, "a", 12)
	fill(sc, "b", 12)

	order := drainOrder(sc)
	if len(order) != 24 {
		t.Fatalf("drained %d, want 24", len(order))
	}
	// Steady state while both have backlog: cycle = [a, b, b, b].
	for cycle := 0; cycle < 4; cycle++ {
		got := order[cycle*4 : cycle*4+4]
		want := []string{"a", "b", "b", "b"}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cycle %d = %v, want %v", cycle, got, want)
			}
		}
	}
	// b exhausted after 4 cycles; the rest is a alone.
	for i := 16; i < 24; i++ {
		if order[i] != "a" {
			t.Fatalf("pop %d = %s, want a (b exhausted)", i, order[i])
		}
	}
}

// TestDRRNoStarvationUnderHotTenant: one hot tenant with a huge backlog
// cannot starve the others — every tenant with queued work appears in
// every round, and a weight-w tenant gets exactly w×quantum slots.
func TestDRRNoStarvationUnderHotTenant(t *testing.T) {
	cfg := &Config{QueueDepth: 1000, Workers: 1,
		Tenants: map[string]TenantPolicy{"hot": {Weight: 5}}}
	sc := newScheduler(cfg)
	fill(sc, "hot", 50)
	fill(sc, "c1", 6)
	fill(sc, "c2", 6)
	fill(sc, "c3", 6)

	order := drainOrder(sc)
	// Steady-state cycle while all have backlog: hot×5, c1, c2, c3.
	want := []string{"hot", "hot", "hot", "hot", "hot", "c1", "c2", "c3"}
	for cycle := 0; cycle < 3; cycle++ {
		for i, w := range want {
			if got := order[cycle*8+i]; got != w {
				t.Fatalf("cycle %d pos %d = %s, want %s (order %v)", cycle, i, got, w, order[:24])
			}
		}
	}
	// Every cold tenant fully drains long before the hot backlog does:
	// the last cold pop must precede the last 20 hot pops.
	lastCold := 0
	for i, name := range order {
		if name != "hot" {
			lastCold = i
		}
	}
	if lastCold >= len(order)-20 {
		t.Fatalf("cold tenants starved: last cold pop at %d of %d", lastCold, len(order))
	}
}

// TestDRRLateArrivalJoinsNextRound: a tenant enqueueing into a busy ring
// is served within one round of its arrival, not after the hot backlog.
func TestDRRLateArrivalJoinsNextRound(t *testing.T) {
	cfg := &Config{QueueDepth: 1000, Workers: 1}
	sc := newScheduler(cfg)
	fill(sc, "hot", 100)

	// Pop a few hot requests, then a latecomer arrives.
	sc.mu.Lock()
	for i := 0; i < 5; i++ {
		sc.pop()
	}
	sc.mu.Unlock()
	fill(sc, "late", 1)

	sc.mu.Lock()
	pos := -1
	for i := 0; sc.queued > 0 && i < 10; i++ {
		if sc.pop().req.Tenant.Name == "late" {
			pos = i
			break
		}
	}
	sc.mu.Unlock()
	if pos < 0 || pos > 2 {
		t.Fatalf("late arrival served at pop %d after joining, want within 2", pos)
	}
}

// TestDRRIdleTenantBanksNoCredit: a tenant that drains and leaves the ring
// rejoins with a fresh deficit — idle time earns no burst.
func TestDRRIdleTenantBanksNoCredit(t *testing.T) {
	cfg := &Config{QueueDepth: 1000, Workers: 1,
		Tenants: map[string]TenantPolicy{"idler": {Weight: 100}}}
	sc := newScheduler(cfg)
	fill(sc, "idler", 1)
	sc.mu.Lock()
	sc.pop() // idler drains, leaves the ring with deficit forfeited
	sc.mu.Unlock()

	fill(sc, "steady", 10)
	fill(sc, "idler", 10)
	order := drainOrder(sc)
	// steady enqueued first → ring order [steady, idler]; idler's weight
	// gives it a big share now, but its earlier idle round added nothing.
	if order[0] != "steady" {
		t.Fatalf("first pop = %s, want steady", order[0])
	}
	sc.mu.Lock()
	if tq := sc.tenants["idler"]; tq.deficit < 0 {
		t.Fatalf("idler deficit %d went negative", tq.deficit)
	}
	sc.mu.Unlock()
}

// TestSchedulerServedCounters: per-tenant served counters track dispatches.
func TestSchedulerServedCounters(t *testing.T) {
	cfg := &Config{QueueDepth: 1000, Workers: 1}
	sc := newScheduler(cfg)
	fill(sc, "x", 7)
	fill(sc, "y", 3)
	drainOrder(sc)
	if got := sc.tenantServed("x"); got != 7 {
		t.Fatalf("served(x) = %d, want 7", got)
	}
	if got := sc.tenantServed("y"); got != 3 {
		t.Fatalf("served(y) = %d, want 3", got)
	}
	if got := sc.tenantServed("nope"); got != 0 {
		t.Fatalf("served(nope) = %d, want 0", got)
	}
}

// Package kernel simulates the operating-system substrate the paper's
// evaluation depends on: virtual address spaces with reserve/commit
// semantics (mmap without permissions for Wasm guard regions), page
// protection changes, madvise(DONTNEED) discards with TLB shootdowns, a
// syscall interface with an interposition hook (for the seccomp-bpf
// baseline), signal delivery (HFI faults arrive as SIGSEGV), and process
// context switches that save HFI state via the extended xsave.
//
// All costs are simulated time on a Clock, with constants calibrated
// against the measurements the paper reports (see CostModel). The
// simulation measures how those costs change across isolation designs —
// the paper's claims are about ratios and shapes, not absolute nanoseconds.
package kernel

// Clock is the simulated time source shared by the kernel and the
// execution engines. Time is in nanoseconds.
type Clock struct {
	now uint64
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time in nanoseconds.
func (c *Clock) Now() uint64 { return c.now }

// Advance moves simulated time forward by ns nanoseconds.
func (c *Clock) Advance(ns uint64) { c.now += ns }

// AdvanceCycles moves time forward by cycles at the given core frequency
// in GHz (cycles/ns).
func (c *Clock) AdvanceCycles(cycles uint64, ghz float64) {
	c.now += uint64(float64(cycles) / ghz)
}

// CoreGHz is the simulated core frequency, following the paper's Table 2
// baseline (3.3 GHz).
const CoreGHz = 3.3

// CyclesToNs converts a cycle count at CoreGHz to nanoseconds.
func CyclesToNs(cycles uint64) uint64 {
	return uint64(float64(cycles) / CoreGHz)
}

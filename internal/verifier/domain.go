package verifier

// The abstract domain. Each register holds an AbsVal: an unsigned 64-bit
// interval plus optional stack provenance. The issue's four-point lattice
// (untrusted / masked-to-heap / bounds-checked / trusted-base) embeds into
// this domain:
//
//   - untrusted       = Top interval, no provenance
//   - masked-to-heap  = interval bounded by the mask (the AND transfer)
//   - bounds-checked  = interval refined by a compare-and-branch edge
//   - trusted-base    = exact constant (heap base, globals) or stack symbol
//
// Intervals compose under arithmetic where the coarse lattice cannot,
// which is what lets one analysis prove all four schemes.

const maxU64 = ^uint64(0)

// Interval is an inclusive unsigned range [Lo, Hi]. The empty interval is
// not representable; transfer functions that would produce it report the
// edge as dead instead.
type Interval struct{ Lo, Hi uint64 }

// Top is the unconstrained interval.
var Top = Interval{0, maxU64}

// Exact returns the singleton interval {v}.
func Exact(v uint64) Interval { return Interval{v, v} }

// IsTop reports whether the interval carries no information.
func (iv Interval) IsTop() bool { return iv.Lo == 0 && iv.Hi == maxU64 }

// Singleton returns the value and true if the interval is a single point.
func (iv Interval) Singleton() (uint64, bool) { return iv.Lo, iv.Lo == iv.Hi }

// Contains reports v ∈ iv.
func (iv Interval) Contains(v uint64) bool { return iv.Lo <= v && v <= iv.Hi }

// In reports iv ⊆ o.
func (iv Interval) In(o Interval) bool { return o.Lo <= iv.Lo && iv.Hi <= o.Hi }

// Join is the interval union hull.
func (iv Interval) Join(o Interval) Interval {
	return Interval{minU(iv.Lo, o.Lo), maxU(iv.Hi, o.Hi)}
}

// Widen accelerates convergence: bounds that grew since the previous
// iterate jump to the next "all ones" threshold (2^k - 1) rather than
// creeping upward. The threshold chain passes through 2^63-1, which keeps
// signed-comparison refinement applicable to values that stay non-negative.
func (iv Interval) Widen(next Interval) Interval {
	w := iv.Join(next)
	if w.Lo < iv.Lo {
		w.Lo = 0
	}
	if w.Hi > iv.Hi {
		w.Hi = nextAllOnes(w.Hi)
	}
	return w
}

// nextAllOnes returns the smallest 2^k-1 that is >= v.
func nextAllOnes(v uint64) uint64 {
	r := uint64(0)
	for r < v {
		r = r<<1 | 1
	}
	return r
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func satAdd(a, b uint64) (uint64, bool) {
	s := a + b
	if s < a {
		return maxU64, false
	}
	return s, true
}

func satMul(a, b uint64) (uint64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/a != b {
		return maxU64, false
	}
	return p, true
}

// Add is the interval sum; overflow of either bound degrades to Top.
func (iv Interval) Add(o Interval) Interval {
	lo, ok1 := satAdd(iv.Lo, o.Lo)
	hi, ok2 := satAdd(iv.Hi, o.Hi)
	if !ok2 {
		return Top
	}
	_ = ok1 // lo overflow implies hi overflow
	return Interval{lo, hi}
}

// AddConst adds a signed displacement; negative displacements subtract.
func (iv Interval) AddConst(c int64) Interval {
	if c >= 0 {
		return iv.Add(Exact(uint64(c)))
	}
	return iv.SubNoWrap(Exact(uint64(-c)))
}

// SubNoWrap computes iv - o assuming no wraparound can be proven
// (iv.Lo >= o.Hi); otherwise it returns Top.
func (iv Interval) SubNoWrap(o Interval) Interval {
	if iv.Lo < o.Hi {
		return Top
	}
	return Interval{iv.Lo - o.Hi, iv.Hi - o.Lo}
}

// subGE computes iv - o given an external proof that the minuend value is
// always >= the subtrahend value (a relation fact from a branch edge).
func (iv Interval) subGE(o Interval) Interval {
	lo := uint64(0)
	if iv.Lo > o.Hi {
		lo = iv.Lo - o.Hi
	}
	// value(iv) >= value(o) >= o.Lo, and value(iv) <= iv.Hi, so iv.Hi >= o.Lo.
	return Interval{lo, iv.Hi - o.Lo}
}

// Mul is the interval product (operands are unsigned).
func (iv Interval) Mul(o Interval) Interval {
	hi, ok := satMul(iv.Hi, o.Hi)
	if !ok {
		return Top
	}
	lo, _ := satMul(iv.Lo, o.Lo)
	return Interval{lo, hi}
}

// cap32 truncates to Wasm i32 result semantics.
func (iv Interval) cap32() Interval {
	if iv.Hi <= 0xffffffff {
		return iv
	}
	return Interval{0, 0xffffffff}
}

// capSize bounds a zero-extended load of the given byte size.
func capSize(size uint8) Interval {
	if size >= 8 {
		return Top
	}
	return Interval{0, 1<<(8*uint(size)) - 1}
}

// AbsVal is the per-register abstract value: an interval, plus optional
// stack provenance. When HasOff is set the value is exactly S + Off where
// S is the analyzed function's entry stack pointer (a symbolic constant);
// such values address the frame precisely even though S is unknown.
// CallerFP marks the exact frame-pointer value the function was entered
// with, threading the callee-saved-FP proof through spill slots.
type AbsVal struct {
	I        Interval
	HasOff   bool
	Off      int64
	CallerFP bool
}

func topVal() AbsVal          { return AbsVal{I: Top} }
func exactVal(v uint64) AbsVal { return AbsVal{I: Exact(v)} }
func intervalVal(iv Interval) AbsVal { return AbsVal{I: iv} }

// stackVal returns the symbolic stack value S + off.
func stackVal(off int64) AbsVal { return AbsVal{I: Top, HasOff: true, Off: off} }

// dataOnly strips provenance, keeping only the interval.
func (v AbsVal) dataOnly() AbsVal { return AbsVal{I: v.I} }

func (v AbsVal) join(o AbsVal) AbsVal {
	r := AbsVal{I: v.I.Join(o.I)}
	if v.HasOff && o.HasOff && v.Off == o.Off {
		r.HasOff, r.Off = true, v.Off
	}
	r.CallerFP = v.CallerFP && o.CallerFP
	return r
}

func (v AbsVal) widen(next AbsVal) AbsVal {
	j := v.join(next)
	j.I = v.I.Widen(next.I)
	return j
}

func (v AbsVal) eq(o AbsVal) bool { return v == o }

// addVal implements abstract a + b with stack-symbol propagation.
func addVal(a, b AbsVal) AbsVal {
	if b.HasOff && !a.HasOff {
		a, b = b, a
	}
	if a.HasOff {
		if c, ok := b.I.Singleton(); ok && !b.HasOff {
			return stackVal(a.Off + int64(c))
		}
		return topVal() // stack symbol plus unknown: some address, location unknown
	}
	return intervalVal(a.I.Add(b.I))
}

// subVal implements abstract a - b; rels supplies a>=b facts.
func subVal(a, b AbsVal, ge bool) AbsVal {
	switch {
	case a.HasOff && b.HasOff:
		return exactVal(uint64(a.Off - b.Off)) // pointer difference: S cancels
	case a.HasOff:
		if c, ok := b.I.Singleton(); ok {
			return stackVal(a.Off - int64(c))
		}
		return topVal()
	case b.HasOff:
		return topVal()
	case ge:
		return intervalVal(a.I.subGE(b.I))
	default:
		return intervalVal(a.I.SubNoWrap(b.I))
	}
}

package wasm

import (
	"fmt"
	"sort"

	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
	"hfi/internal/sfi"
	"hfi/internal/verifier"
)

// Layout fixes the guest addresses a compiled instance uses. The sandbox
// runtime (internal/sandbox) chooses layouts; the compiler bakes them in
// the way a Wasm AOT compiler bakes its heap-base register initialization
// into the entry stub.
type Layout struct {
	CodeBase   uint64 // program text
	HeapBase   uint64 // linear memory 0
	StackBase  uint64 // machine stack (grows down from StackBase+StackSize)
	StackSize  uint64
	GlobalBase uint64 // runtime globals: current pages, grow staging, memory contexts
	// ExtraMemBases holds the bases of linear memories 1..N. Only the
	// HFI scheme reads them at compile time (they become explicit-region
	// programming data for the runtime); software schemes fetch them from
	// the instance context at GlobalBase on every access.
	ExtraMemBases []uint64
}

// Global-area offsets (relative to Layout.GlobalBase).
const (
	gCurPages = 0  // u64: current linear-memory pages
	gHeapBase = 8  // u64: linear-memory base (written by the runtime)
	gStaging  = 48 // 32-byte region_t staging buffer for HFI memory.grow
	// gMemCtx is the start of the per-memory context records for linear
	// memories 1..N: {base u64, bound-or-mask u64} each. This is the
	// VMContext-style indirection real Wasm runtimes use for secondary
	// memories — and the per-access cost HFI's explicit regions avoid.
	gMemCtx = 192
	// GlobalAreaSize is the size the runtime must map at GlobalBase.
	GlobalAreaSize = 512
)

// MemCtxOffset returns the global-area offset of linear memory k's context
// record (k >= 1).
func MemCtxOffset(k int) uint64 { return gMemCtx + uint64(k-1)*16 }

// Options tunes a compilation.
type Options struct {
	// ExtraReservedRegs removes N additional registers from the
	// allocatable pool (the §6.1 register-pressure experiment).
	ExtraReservedRegs int
	// Swivel applies a Swivel-SFI-like Spectre hardening pass: extra
	// interlock instructions at every linear-block entry and conditional
	// branch, and a serializing entry fence. It models the §6.5 baseline.
	Swivel bool
	// NoVerify skips the post-compile static safety verification. Only
	// throwaway compilations (layout probes) and tests that deliberately
	// produce unverifiable programs should set it.
	NoVerify bool
}

// Compiled is the output of Compile: the program image plus the metadata a
// runtime needs to instantiate it.
type Compiled struct {
	Prog   *isa.Program
	Module *Module
	Scheme sfi.Scheme
	Layout Layout
	Opts   Options
	// BinaryBytes is the code-image size (Table 1's "Bin size" column).
	BinaryBytes uint64
	// Facts is the verifier's proof artifact (nil under NoVerify): the
	// per-instruction and per-block facts the interpreter's elision path
	// consumes. It travels with the verified program through the code
	// cache, so shared warm images carry their proofs.
	Facts *verifier.Facts
}

// HeapBytes returns the initial linear-memory size in bytes.
func (c *Compiled) HeapBytes() uint64 { return uint64(c.Module.MemPages) * PageSize }

// MaxHeapBytes returns the maximum linear-memory size in bytes.
func (c *Compiled) MaxHeapBytes() uint64 { return uint64(c.Module.MaxPages) * PageSize }

// fnCtx is the per-function compilation context.
type fnCtx struct {
	f        *Fn
	phys     map[VReg]isa.Reg // direct-mapped virtual registers
	spilled  map[VReg]bool
	s1, s2   isa.Reg // spill staging scratches (valid in spill mode)
	scratch  isa.Reg // scheme scratch (BoundsCheck/Masking)
	memBase  isa.Reg // secondary-memory base scratch (multi-memory, non-HFI)
	hasFrame bool
}

type compiler struct {
	m      *Module
	scheme sfi.Scheme
	lay    Layout
	opts   Options
	b      *isa.Builder
	pool   []isa.Reg // allocatable registers after ABI + scheme reservations
}

// Compile lowers a module to a guest program under the given scheme.
func Compile(m *Module, scheme sfi.Scheme, lay Layout, opts Options) (*Compiled, error) {
	if m.Lookup("run") == nil {
		return nil, fmt.Errorf("wasm: module %q has no run function", m.Name)
	}
	if scheme == sfi.Masking {
		size := uint64(m.MemPages) * PageSize
		if size&(size-1) != 0 {
			return nil, fmt.Errorf("wasm: masking scheme needs power-of-two memory, have %d pages", m.MemPages)
		}
		for _, pages := range m.ExtraMemories {
			ms := uint64(pages) * PageSize
			if ms&(ms-1) != 0 {
				return nil, fmt.Errorf("wasm: masking scheme needs power-of-two memories, have %d pages", pages)
			}
		}
	}
	if scheme == sfi.HFI && m.NumMemories() > hfi.NumExplicitRegions {
		// §3.3.1's register multiplexing for >4 memories is future work;
		// the runtime would swap explicit regions with hfi_set_region.
		return nil, fmt.Errorf("wasm: HFI supports up to %d memories without region multiplexing", hfi.NumExplicitRegions)
	}
	c := &compiler{m: m, scheme: scheme, lay: lay, opts: opts, b: isa.NewBuilder(lay.CodeBase)}

	// Build the allocatable pool: R0..R13 minus scheme reservations minus
	// the artificial reservations of the register-pressure experiment.
	reserved := make(map[isa.Reg]bool)
	for _, r := range scheme.ReservedRegs() {
		reserved[r] = true
	}
	for r := isa.R0; r < isa.R14; r++ {
		if !reserved[r] {
			c.pool = append(c.pool, r)
		}
	}
	if n := opts.ExtraReservedRegs; n > 0 {
		if n >= len(c.pool)-6 {
			return nil, fmt.Errorf("wasm: cannot reserve %d extra registers", n)
		}
		c.pool = c.pool[:len(c.pool)-n]
	}

	c.emitStart()
	for _, f := range m.Funcs {
		if err := c.emitFn(f); err != nil {
			return nil, err
		}
	}
	c.emitTrap()
	if m.UsesHostcalls() {
		c.emitHostcallGate()
	}

	prog := c.b.Build()
	cc := &Compiled{
		Prog: prog, Module: m, Scheme: scheme, Layout: lay, Opts: opts,
		BinaryBytes: prog.Size(),
	}
	// Post-compile gate: prove the emitted program cannot escape the
	// sandbox geometry it was compiled against. The compiler is not
	// trusted; its output is checked on every compilation. Analyze is
	// Verify plus the proof artifact the interpreter's elision path
	// consumes (facts the verification already discharged).
	if !opts.NoVerify {
		facts, err := verifier.Analyze(prog, VerifyConfig(cc))
		if err != nil {
			return nil, fmt.Errorf("wasm: %s/%v: %w", m.Name, scheme, err)
		}
		cc.Facts = facts
	}
	return cc, nil
}

// emitStart builds the entry stub: stack and scheme-register setup, the
// call into run, and the final halt that returns control to the runtime.
func (c *compiler) emitStart() {
	b := c.b
	b.Label("__start")
	if c.opts.Swivel {
		// Swivel hardens sandbox entry with a serializing fence.
		b.Fence()
	}
	b.MovImm(isa.SP, int64(c.lay.StackBase+c.lay.StackSize))
	switch c.scheme {
	case sfi.None, sfi.GuardPages:
		b.MovImm(sfi.HeapBaseReg, int64(c.lay.HeapBase))
	case sfi.BoundsCheck:
		b.MovImm(sfi.HeapBaseReg, int64(c.lay.HeapBase))
		b.MovImm(sfi.HeapBoundReg, int64(c.m.MemPages)*PageSize)
	case sfi.Masking:
		b.MovImm(sfi.HeapBaseReg, int64(c.lay.HeapBase))
		b.MovImm(sfi.MaskReg, int64(c.m.MemPages)*PageSize-1)
	case sfi.HFI:
		// The heap region register was programmed by the runtime before
		// entry; no in-band setup is needed. This is the zero-reserved-
		// register property the §6.1 analysis credits HFI's speedup to.
	}
	// Host-provided arguments are raw 64-bit register values, but the
	// guest ABI types them i32 — truncate them here so the "index below
	// 2^32" contract the access sequences rely on holds from the first
	// guest instruction, whatever the host passed.
	if f := c.m.Lookup("run"); f != nil {
		for i := 0; i < f.NParams; i++ {
			b.ALU32Imm(isa.OpAdd, isa.Reg(i), isa.Reg(i), 0)
		}
	}
	b.Call("run")
	if c.scheme == sfi.HFI {
		// Wasm2c's sandbox transition ends with hfi_exit (§5.1). In a
		// hybrid sandbox without an exit handler, control falls through
		// to the trusted code placed directly after — here, the halt
		// that returns to the host runtime.
		b.HfiExit()
	}
	b.Halt()
}

// emitTrap builds the shared bounds-trap target: a null dereference that
// raises a precise fault through the page-protection path.
func (c *compiler) emitTrap() {
	b := c.b
	b.Label("__trap")
	b.MovImm(isa.R0, 0)
	b.Load(8, isa.R0, isa.R0, isa.RegNone, 1, 0)
	b.Halt()
}

// hostcallGateSym names the module's single host exit. internal/hostcall
// publishes the same convention (hostcall.GateSym); the literal is
// duplicated here so wasm does not depend on the host-side package.
const hostcallGateSym = "__hostcall"

// emitHostcallGate builds the designated host exit: exactly the sequence
// the verifier's gate proof demands (hostcall; ret), enterable only by a
// direct call. Emitted right after __trap, whose terminating halt doubles
// as the no-fall-through barrier the proof requires.
func (c *compiler) emitHostcallGate() {
	b := c.b
	b.Label(hostcallGateSym)
	b.Hostcall()
	b.Ret()
}

// allocate performs register allocation for one function.
func (c *compiler) allocate(f *Fn) (*fnCtx, error) {
	ctx := &fnCtx{f: f, phys: make(map[VReg]isa.Reg), spilled: make(map[VReg]bool),
		s1: isa.RegNone, s2: isa.RegNone, scratch: isa.RegNone, memBase: isa.RegNone}
	pool := append([]isa.Reg(nil), c.pool...)
	if c.scheme.NeedsScratch() || (len(c.m.ExtraMemories) > 0 && c.scheme != sfi.HFI) {
		ctx.scratch = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
	}
	if len(c.m.ExtraMemories) > 0 && c.scheme != sfi.HFI {
		// Secondary-memory accesses stage the memory base through a
		// dedicated scratch (the instance-context indirection).
		ctx.memBase = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
	}
	n := f.NumVRegs()
	if n <= len(pool) {
		for v := 0; v < n; v++ {
			ctx.phys[VReg(v)] = pool[v]
		}
		ctx.hasFrame = f.HasCalls || c.needsFlush(f)
		return ctx, nil
	}
	// Spill mode: reserve two staging scratches (distinct from the scheme
	// scratch), keep the most-used virtual registers in the rest.
	if len(pool) < 4 {
		return nil, fmt.Errorf("wasm: %s needs %d registers but only %d are allocatable", f.Name, n, len(pool))
	}
	ctx.s1 = pool[len(pool)-1]
	ctx.s2 = pool[len(pool)-2]
	pool = pool[:len(pool)-2]

	use := spillWeights(f)
	order := make([]VReg, 0, n)
	for v := 0; v < n; v++ {
		order = append(order, VReg(v))
	}
	sort.SliceStable(order, func(i, j int) bool { return use[order[i]] > use[order[j]] })
	for i, v := range order {
		if i < len(pool) {
			ctx.phys[v] = pool[i]
		} else {
			ctx.spilled[v] = true
		}
	}
	ctx.hasFrame = true
	return ctx, nil
}

// needsFlush reports whether the function contains operations that clobber
// the allocatable registers wholesale (grow sequences use R0-R5).
func (c *compiler) needsFlush(f *Fn) bool {
	for i := range f.code {
		if f.code[i].vop == vGrow {
			return true
		}
	}
	return false
}

// spillWeights estimates dynamic use frequency per virtual register:
// static uses weighted exponentially by loop-nesting depth, where a loop
// is a (label, backward-branch) interval. Registers hot in inner loops
// stay allocated; initialization-only values spill first.
func spillWeights(f *Fn) map[VReg]int {
	// Label definition positions.
	labelAt := make(map[string]int)
	for i := range f.code {
		in := &f.code[i]
		if in.vop == vISA && in.Op == isa.OpNop && len(in.Label) > 0 && in.Label[0] == '@' {
			labelAt[in.Label[1:]] = i
		}
	}
	type interval struct{ lo, hi int }
	var loops []interval
	for i := range f.code {
		in := &f.code[i]
		if in.vop != vISA || (in.Op != isa.OpBr && in.Op != isa.OpJmp) {
			continue
		}
		if at, ok := labelAt[in.Label]; ok && at < i {
			loops = append(loops, interval{at, i})
		}
	}
	depth := make([]int, len(f.code))
	for _, lp := range loops {
		for i := lp.lo; i <= lp.hi; i++ {
			depth[i]++
		}
	}
	// Conditionally executed regions (between a forward conditional branch
	// and its target) run less often than their enclosing loop; discount
	// them the way profile-estimating compilers do.
	guard := make([]int, len(f.code))
	for i := range f.code {
		in := &f.code[i]
		if in.vop != vISA || in.Op != isa.OpBr {
			continue
		}
		if at, ok := labelAt[in.Label]; ok && at > i {
			for j := i + 1; j < at; j++ {
				guard[j]++
			}
		}
	}
	use := make(map[VReg]int)
	for i := range f.code {
		in := &f.code[i]
		w := 1
		for d := 0; d < depth[i] && d < 6; d++ {
			w *= 8
		}
		for g := 0; g < guard[i] && g < 3; g++ {
			w = (w + 2) / 3
		}
		for _, v := range []VReg{in.Rd, in.Rs1, in.Rs2, in.Rs3} {
			if v != VNone {
				use[v] += w
			}
		}
		for _, v := range in.Args {
			use[v] += w
		}
	}
	return use
}

// checkMemDisp enforces the access contract every scheme's guard and
// redzone geometry is sized for: displacements are non-negative (they
// would reach below the memory base) and disp+size stays within 2^31.
func (c *compiler) checkMemDisp(in *VInstr) error {
	if in.Disp < 0 {
		return fmt.Errorf("negative linear-memory displacement %d", in.Disp)
	}
	if in.Disp+int64(in.Size) > 1<<31 {
		return fmt.Errorf("linear-memory displacement %d exceeds the 2^31 access contract", in.Disp)
	}
	return nil
}

func slotDisp(v VReg) int64 { return -8 * (int64(v) + 1) }

// src materializes a virtual register source into a physical register,
// staging spilled values through the given scratch.
func (ctx *fnCtx) src(b *isa.Builder, v VReg, scratch isa.Reg) isa.Reg {
	if v == VNone {
		return isa.RegNone
	}
	if r, ok := ctx.phys[v]; ok {
		return r
	}
	b.Load(8, scratch, sfi.FP, isa.RegNone, 1, slotDisp(v))
	return scratch
}

// dst returns the physical register to compute a result into and a
// function to run after the computation (the spill store).
func (ctx *fnCtx) dst(b *isa.Builder, v VReg) (isa.Reg, func()) {
	if r, ok := ctx.phys[v]; ok {
		return r, func() {}
	}
	return ctx.s1, func() { b.Store(8, sfi.FP, isa.RegNone, 1, slotDisp(v), ctx.s1) }
}

// flushRegs stores every register-allocated virtual register to its home
// slot (before calls and grow sequences); reloadRegs restores them.
func (ctx *fnCtx) flushRegs(b *isa.Builder) {
	for v := 0; v < ctx.f.NumVRegs(); v++ {
		if r, ok := ctx.phys[VReg(v)]; ok {
			b.Store(8, sfi.FP, isa.RegNone, 1, slotDisp(VReg(v)), r)
		}
	}
}

func (ctx *fnCtx) reloadRegs(b *isa.Builder) {
	for v := 0; v < ctx.f.NumVRegs(); v++ {
		if r, ok := ctx.phys[VReg(v)]; ok {
			b.Load(8, r, sfi.FP, isa.RegNone, 1, slotDisp(VReg(v)))
		}
	}
}

func (c *compiler) label(f *Fn, l string) string { return f.Name + "." + l }

// emitFn compiles one function.
func (c *compiler) emitFn(f *Fn) error {
	ctx, err := c.allocate(f)
	if err != nil {
		return err
	}
	b := c.b
	b.Label(f.Name)
	if c.opts.Swivel {
		c.emitSwivelBlockEntry()
	}

	// Prologue: save caller's FP, establish frame, spill incoming params.
	frameSize := int64(8 * f.NumVRegs())
	b.SubImm(isa.SP, isa.SP, 8)
	b.Store(8, isa.SP, isa.RegNone, 1, 0, sfi.FP)
	b.Mov(sfi.FP, isa.SP)
	b.SubImm(isa.SP, isa.SP, frameSize)
	for i := 0; i < f.NParams; i++ {
		pr := isa.Reg(i) // params arrive in R0..R5
		if r, ok := ctx.phys[VReg(i)]; ok {
			b.Mov(r, pr)
		} else {
			b.Store(8, sfi.FP, isa.RegNone, 1, slotDisp(VReg(i)), pr)
		}
		// Params also need home-slot copies when calls will flush.
		if ctx.hasFrame {
			if r, ok := ctx.phys[VReg(i)]; ok {
				b.Store(8, sfi.FP, isa.RegNone, 1, slotDisp(VReg(i)), r)
			}
		}
	}

	sawRet := false
	for i := range f.code {
		in := &f.code[i]
		if in.vop == vRet {
			sawRet = true
		}
		if err := c.emitInstr(ctx, in); err != nil {
			return fmt.Errorf("%s: %v", f.Name, err)
		}
	}
	if !sawRet {
		c.emitEpilogue(ctx, VNone)
	}
	return nil
}

// emitEpilogue tears down the frame and returns, placing the optional
// result in R0.
func (c *compiler) emitEpilogue(ctx *fnCtx, result VReg) {
	b := c.b
	if result != VNone {
		r := ctx.src(b, result, ctx.s1)
		if r != isa.R0 {
			b.Mov(isa.R0, r)
		}
	}
	b.Mov(isa.SP, sfi.FP)
	b.Load(8, sfi.FP, isa.SP, isa.RegNone, 1, 0)
	b.AddImm(isa.SP, isa.SP, 8)
	b.Ret()
}

// emitSwivelBlockEntry emits the Swivel-style linear-block interlock: two
// dependent ALU operations that model the block-label check sequence.
func (c *compiler) emitSwivelBlockEntry() {
	b := c.b
	b.AddImm(sfi.FP, sfi.FP, 0)
	b.AddImm(sfi.FP, sfi.FP, 0)
}

func (c *compiler) emitInstr(ctx *fnCtx, in *VInstr) error {
	b := c.b
	f := ctx.f
	switch in.vop {
	case vISA:
		switch in.Op {
		case isa.OpNop:
			if len(in.Label) > 0 && in.Label[0] == '@' {
				b.Label(c.label(f, in.Label[1:]))
				if c.opts.Swivel {
					c.emitSwivelBlockEntry()
				}
				return nil
			}
			b.Nop()
		case isa.OpMovImm:
			r, fin := ctx.dst(b, in.Rd)
			b.MovImm(r, in.Imm)
			fin()
		case isa.OpMov:
			s := ctx.src(b, in.Rs1, ctx.s1)
			r, fin := ctx.dst(b, in.Rd)
			b.Mov(r, s)
			fin()
		case isa.OpBr:
			a := ctx.src(b, in.Rs1, ctx.s1)
			if in.UseImm {
				b.BrImm(in.Cond, a, in.Imm, c.label(f, in.Label))
			} else {
				bb := ctx.src(b, in.Rs2, ctx.s2)
				b.Br(in.Cond, a, bb, c.label(f, in.Label))
			}
			if c.opts.Swivel {
				// Swivel hardens the fall-through edge too.
				b.AddImm(sfi.FP, sfi.FP, 0)
			}
		case isa.OpJmp:
			b.Jmp(c.label(f, in.Label))
		default:
			// ALU operation.
			a := ctx.src(b, in.Rs1, ctx.s1)
			bb := isa.RegNone
			if !in.UseImm && in.Rs2 != VNone {
				bb = ctx.src(b, in.Rs2, ctx.s2)
			}
			r, fin := ctx.dst(b, in.Rd)
			b.Raw(isa.Instr{Op: in.Op, Rd: r, Rs1: a, Rs2: bb, Rs3: isa.RegNone,
				UseImm: in.UseImm, Imm: in.Imm, W32: in.W32})
			fin()
		}

	case vLoad:
		if err := c.checkMemDisp(in); err != nil {
			return err
		}
		idx := ctx.src(b, in.Rs1, ctx.s2)
		r, fin := ctx.dst(b, in.Rd)
		if in.MemIdx > 0 {
			if err := c.emitMultiMemAccess(ctx, in, r, idx, isa.RegNone); err != nil {
				return err
			}
		} else {
			sfi.EmitLoad(b, c.scheme, in.Size, r, idx, in.Disp, in.SignExt, ctx.scratch, "__trap")
		}
		fin()

	case vStore:
		if err := c.checkMemDisp(in); err != nil {
			return err
		}
		idx := ctx.src(b, in.Rs1, ctx.s2)
		src := ctx.src(b, in.Rs3, ctx.s1)
		if in.MemIdx > 0 {
			if err := c.emitMultiMemAccess(ctx, in, isa.RegNone, idx, src); err != nil {
				return err
			}
		} else {
			sfi.EmitStore(b, c.scheme, in.Size, idx, in.Disp, src, ctx.scratch, "__trap")
		}

	case vSize:
		r, fin := ctx.dst(b, in.Rd)
		b.MovImm(r, int64(c.lay.GlobalBase+gCurPages))
		b.Load(8, r, r, isa.RegNone, 1, 0)
		fin()

	case vGrow:
		c.emitGrow(ctx, in)

	case vCall:
		callee := c.m.Lookup(in.Label)
		if callee == nil {
			return fmt.Errorf("call to unknown function %q", in.Label)
		}
		if len(in.Args) != callee.NParams {
			return fmt.Errorf("call to %s: %d args, want %d", in.Label, len(in.Args), callee.NParams)
		}
		if len(in.Args) > 6 {
			return fmt.Errorf("call to %s: more than 6 arguments unsupported", in.Label)
		}
		ctx.flushRegs(b)
		for i := range in.Args {
			b.Load(8, isa.Reg(i), sfi.FP, isa.RegNone, 1, slotDisp(in.Args[i]))
		}
		b.Call(in.Label)
		if in.Rd != VNone {
			b.Store(8, sfi.FP, isa.RegNone, 1, slotDisp(in.Rd), isa.R0)
		}
		ctx.reloadRegs(b)

	case vRet:
		c.emitEpilogue(ctx, in.Rs1)

	case vTrap:
		b.Jmp("__trap")

	case vHost:
		if len(in.Args) > 5 {
			return fmt.Errorf("hostcall %d: more than 5 arguments unsupported", in.Imm)
		}
		ctx.flushRegs(b)
		b.MovImm(isa.R0, in.Imm) // the per-call-site provable constant
		for i := range in.Args {
			b.Load(8, isa.Reg(1+i), sfi.FP, isa.RegNone, 1, slotDisp(in.Args[i]))
		}
		b.Call(hostcallGateSym)
		if in.Rd != VNone {
			b.Store(8, sfi.FP, isa.RegNone, 1, slotDisp(in.Rd), isa.R0)
		}
		ctx.reloadRegs(b)

	default:
		return fmt.Errorf("unknown IR op %d", in.vop)
	}
	return nil
}

// emitMultiMemAccess lowers an access to a secondary linear memory. Under
// HFI the access is a single hmov against the memory's explicit region.
// Software schemes pay the instance-context indirection: load the base
// (and, for bounds/masking, the bound or mask) from the globals area, then
// perform the checked access — the multi-memory overhead §2 describes.
func (c *compiler) emitMultiMemAccess(ctx *fnCtx, in *VInstr, dst, idx, src isa.Reg) error {
	b := c.b
	k := int(in.MemIdx)
	if k >= c.m.NumMemories() {
		return fmt.Errorf("access to undeclared memory %d", k)
	}
	isStore := in.vop == vStore
	if c.scheme == sfi.HFI {
		if isStore {
			b.HStore(uint8(k), in.Size, idx, 1, in.Disp, src)
		} else if in.SignExt {
			b.Raw(isa.Instr{Op: isa.OpHLoad, Rd: dst, Rs1: isa.RegNone, Rs2: idx, Rs3: isa.RegNone,
				HReg: uint8(k), Size: in.Size, Scale: 1, Disp: in.Disp, SignExt: true})
		} else {
			b.HLoad(uint8(k), in.Size, dst, idx, 1, in.Disp)
		}
		return nil
	}
	ctxAddr := int64(c.lay.GlobalBase + MemCtxOffset(k))
	switch c.scheme {
	case sfi.BoundsCheck:
		// Check against the bound fetched from the context before
		// loading the base (the base scratch doubles as the sum
		// temporary): two context loads plus compare-and-branch per
		// access — the real cost of bounds-checked multi-memories.
		b.MovImm(ctx.memBase, ctxAddr)
		b.Load(8, ctx.scratch, ctx.memBase, isa.RegNone, 1, 8) // bound
		b.AddImm(ctx.memBase, idx, in.Disp+int64(in.Size))     // sum
		b.Br(isa.CondGTU, ctx.memBase, ctx.scratch, "__trap")
		b.MovImm(ctx.memBase, ctxAddr)
		b.Load(8, ctx.memBase, ctx.memBase, isa.RegNone, 1, 0) // base
		if isStore {
			b.Store(in.Size, ctx.memBase, idx, 1, in.Disp, src)
		} else if in.SignExt {
			b.LoadS(in.Size, dst, ctx.memBase, idx, 1, in.Disp)
		} else {
			b.Load(in.Size, dst, ctx.memBase, idx, 1, in.Disp)
		}
		return nil
	case sfi.Masking:
		b.MovImm(ctx.memBase, ctxAddr)
		b.Load(8, ctx.scratch, ctx.memBase, isa.RegNone, 1, 8) // mask
		b.Load(8, ctx.memBase, ctx.memBase, isa.RegNone, 1, 0) // base
		b.And(ctx.scratch, idx, ctx.scratch)
		if isStore {
			b.Store(in.Size, ctx.memBase, ctx.scratch, 1, in.Disp, src)
		} else if in.SignExt {
			b.LoadS(in.Size, dst, ctx.memBase, ctx.scratch, 1, in.Disp)
		} else {
			b.Load(in.Size, dst, ctx.memBase, ctx.scratch, 1, in.Disp)
		}
		return nil
	default: // None, GuardPages: base indirection only, guards catch OOB
		b.MovImm(ctx.memBase, ctxAddr)
		b.Load(8, ctx.memBase, ctx.memBase, isa.RegNone, 1, 0)
		if isStore {
			b.Store(in.Size, ctx.memBase, idx, 1, in.Disp, src)
		} else if in.SignExt {
			b.LoadS(in.Size, dst, ctx.memBase, idx, 1, in.Disp)
		} else {
			b.Load(in.Size, dst, ctx.memBase, idx, 1, in.Disp)
		}
		return nil
	}
}

// emitGrow lowers memory.grow for the active scheme. This is the §6.1
// heap-growth experiment's code path: guard pages must mprotect the newly
// exposed pages (a syscall); bounds checking just bumps the bound
// register; HFI updates the explicit region register with
// hfi_get_region/hfi_set_region — no kernel involvement.
func (c *compiler) emitGrow(ctx *fnCtx, in *VInstr) {
	b := c.b
	g := int64(c.lay.GlobalBase)
	ctx.flushRegs(b)
	// R1 = delta, R2 = old pages, R3 = new pages.
	b.Load(8, isa.R1, sfi.FP, isa.RegNone, 1, slotDisp(in.Rs1))
	b.MovImm(isa.R4, g+gCurPages)
	b.Load(8, isa.R2, isa.R4, isa.RegNone, 1, 0)
	b.Add(isa.R3, isa.R2, isa.R1)
	failLabel := fmt.Sprintf("%s.__growfail%d", ctx.f.Name, b.Len())
	doneLabel := fmt.Sprintf("%s.__growdone%d", ctx.f.Name, b.Len())
	b.BrImm(isa.CondGTU, isa.R3, int64(c.m.MaxPages), failLabel)
	// A huge delta can wrap old+delta past the max-pages check; reject the
	// wrap and recompute the delta from the checked sum so everything
	// downstream (the mprotect length in particular) is provably in range.
	b.Br(isa.CondLTU, isa.R3, isa.R2, failLabel)
	b.Sub(isa.R1, isa.R3, isa.R2)
	b.Store(8, isa.R4, isa.RegNone, 1, 0, isa.R3)
	// Result = old page count, saved while R2 still holds it: every value
	// the guest can observe from grow stays below 2^32 (i32 semantics),
	// which is what lets later index arithmetic on it be bounds-proven.
	if in.Rd != VNone {
		b.Store(8, sfi.FP, isa.RegNone, 1, slotDisp(in.Rd), isa.R2)
	}

	switch c.scheme {
	case sfi.GuardPages:
		// mprotect(heapBase + old*64K, delta*64K, RW): the guard pages
		// covering the new range become accessible.
		b.ShlImm(isa.R5, isa.R2, 16)
		b.Add(isa.R5, isa.R5, sfi.HeapBaseReg)
		b.ShlImm(isa.R1, isa.R1, 16)
		b.Mov(isa.R2, isa.R1) // length
		b.Mov(isa.R1, isa.R5) // addr
		b.MovImm(isa.R3, int64(kernel.ProtRead|kernel.ProtWrite))
		b.MovImm(isa.R0, kernel.SysMprotect)
		b.Syscall()
	case sfi.BoundsCheck:
		// New bound = newPages * 64K. A register update; no syscall.
		b.ShlImm(sfi.HeapBoundReg, isa.R3, 16)
	case sfi.Masking, sfi.None:
		// Masking memories are fixed-size (the mask is baked in); None
		// has no enforcement. Only the page counter changes.
	case sfi.HFI:
		// Update the explicit heap region's bound: read the region_t,
		// rewrite the bound field, write it back (§3.2 footnote: "regions
		// can be resized with just a register update").
		b.MovImm(isa.R4, g+gStaging)
		b.HfiGetRegion(hfi.RegionExplicitBase+sfi.HeapRegion, isa.R4)
		b.ShlImm(isa.R5, isa.R3, 16)
		b.Store(8, isa.R4, isa.RegNone, 1, 8, isa.R5)
		b.HfiSetRegion(hfi.RegionExplicitBase+sfi.HeapRegion, isa.R4)
	}
	b.Jmp(doneLabel)
	b.Label(failLabel)
	// Failure result is the i32 -1 (0xFFFFFFFF), as in Wasm: a 64-bit -1
	// would poison every interval derived from the result.
	b.MovImm(isa.R0, 0xFFFFFFFF)
	if in.Rd != VNone {
		b.Store(8, sfi.FP, isa.RegNone, 1, slotDisp(in.Rd), isa.R0)
	}
	b.Label(doneLabel)
	ctx.reloadRegs(b)
}

// SpillWeightsForTest exposes the allocator's frequency estimate to tests.
func SpillWeightsForTest(f *Fn) map[VReg]int { return spillWeights(f) }

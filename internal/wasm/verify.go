package wasm

import (
	"hfi/internal/hfi"
	"hfi/internal/hostcall"
	"hfi/internal/kernel"
	"hfi/internal/sfi"
	"hfi/internal/verifier"
)

// HeapReservation is the address-space window a linear memory of the given
// initial/maximum size occupies: the scheme's reservation policy
// (sfi.Scheme.HeapReservation) with a one-page floor. The sandbox runtime
// maps exactly this window and the verifier proves accesses into it; both
// must call this one function so the numbers cannot drift apart.
func HeapReservation(s sfi.Scheme, initBytes, maxBytes uint64) uint64 {
	r := s.HeapReservation(initBytes, maxBytes)
	if r < PageSize {
		r = PageSize
	}
	return r
}

// VerifyConfig derives the verifier's sandbox-geometry description from a
// compilation: the Layout the code was compiled against plus the
// reservation policy the runtime maps around it.
func VerifyConfig(c *Compiled) verifier.Config {
	lay := c.Layout
	init := c.HeapBytes()
	max := c.MaxHeapBytes()
	if max < init {
		max = init
	}
	maxPages := uint64(c.Module.MaxPages)
	if p := uint64(c.Module.MemPages); maxPages < p {
		maxPages = p
	}
	cfg := verifier.Config{
		Scheme:          c.Scheme,
		EntrySym:        "__start",
		TrapSym:         "__trap",
		HeapBase:        lay.HeapBase,
		InitBytes:       init,
		MaxBytes:        max,
		MaxPages:        maxPages,
		HeapReservation: HeapReservation(c.Scheme, init, max),
		StackBase:       lay.StackBase,
		StackTop:        lay.StackBase + lay.StackSize,
		StackGuard:      sfi.StackGuard,
		GlobalBase:      lay.GlobalBase,
		GlobalSize:      GlobalAreaSize,
		CurPagesAddr:    lay.GlobalBase + gCurPages,
		HeapBaseCell:    lay.GlobalBase + gHeapBase,
		StagingAddr:     lay.GlobalBase + gStaging,
		NullPage:        kernel.OSPageSize,
		NumMems:         c.Module.NumMemories(),
		HeapRegionFlat:  hfi.RegionExplicitBase + sfi.HeapRegion,
		MprotectNum:     kernel.SysMprotect,
		ProtRW:          uint64(kernel.ProtRead | kernel.ProtWrite),
	}
	if _, ok := c.Prog.Symbols[hostcallGateSym]; ok {
		// The module talks to the host: hand the verifier the gate symbol
		// and the ABI signature table so it can prove the gate is the only
		// exit and every call site marshals provably in-heap buffers.
		cfg.HostcallGateSym = hostcallGateSym
		cfg.NumHostcalls = hostcall.NumHostcalls
		cfg.HostcallSigs = hostcall.Sigs()
	}
	for k, pages := range c.Module.ExtraMemories {
		bytes := uint64(pages) * PageSize
		var base uint64
		if k < len(lay.ExtraMemBases) {
			base = lay.ExtraMemBases[k]
		}
		em := verifier.ExtraMem{
			CtxAddr: lay.GlobalBase + MemCtxOffset(k+1),
			Base:    base,
			Bytes:   bytes,
		}
		if bytes > 0 {
			em.Reservation = HeapReservation(c.Scheme, bytes, bytes)
			em.BoundVal = bytes
			if c.Scheme == sfi.Masking {
				em.BoundVal = bytes - 1
			}
		} else if c.Scheme.NeedsGuardReservation() && base != 0 {
			// Placeholder memory under a guard scheme: the runtime still
			// reserves the full PROT_NONE window (see the instantiate
			// path), so accesses are contained even before it is re-pointed.
			em.Reservation = HeapReservation(c.Scheme, 0, 0)
		}
		cfg.ExtraMems = append(cfg.ExtraMems, em)
	}
	return cfg
}

package experiments

import (
	"fmt"

	"hfi/internal/cpu"
	"hfi/internal/sandbox"
	"hfi/internal/sfi"
	"hfi/internal/stats"
	"hfi/internal/wasm"
	"hfi/internal/workloads"
)

// Resolution describes one Fig 4 image size. Rows are scaled down 10x from
// the physical resolutions (1080/480/240) to keep simulation time bounded;
// the transition-to-work ratio per row — the quantity the experiment is
// about — is unchanged, since it depends on the row width, not the count.
type Resolution struct {
	Name  string
	Width uint64
	Rows  uint64
}

// Fig4Resolutions are the three image sizes of Fig 4.
func Fig4Resolutions() []Resolution {
	return []Resolution{
		{"1920p", 1920, 108},
		{"480p", 854, 48},
		{"240p", 426, 24},
	}
}

// Fig4Quality maps the paper's compression levels to per-pixel entropy
// work: "best" (most compressed) decodes hardest.
var Fig4Quality = []struct {
	Name string
	Work uint64
}{
	{"best", 14},
	{"default", 7},
	{"none", 2},
}

// Fig4Cell is one bar of Fig 4.
type Fig4Cell struct {
	Quality    string
	Resolution string
	// Normalized runtime vs guard pages.
	Bounds float64
	HFI    float64
}

// decodeImage runs the per-scanline decode loop: one sandbox invocation
// per row, exactly as the Firefox integration does (§6.2: a 1080x720 image
// requires ≈ 720×2 serialized enters/exits).
func decodeImage(scheme sfi.Scheme, res Resolution, quality uint64) (float64, error) {
	rt := sandbox.NewRuntime()
	rt.Serialized = true // Spectre-protected library sandboxing
	inst, err := rt.Instantiate(workloads.JPEGDecoder(), scheme, wasm.Options{})
	if err != nil {
		return 0, err
	}
	eng := cpu.NewInterp(rt.M)
	clock := rt.M.Kern.Clock
	t0 := clock.Now()
	for row := uint64(0); row < res.Rows; row++ {
		r, _ := inst.Invoke(eng, 0, row, res.Width, quality)
		if r.Reason != cpu.StopHalt {
			return 0, fmt.Errorf("decode row %d: stop %v", row, r.Reason)
		}
	}
	return float64(clock.Now() - t0), nil
}

// RunFig4 reproduces Fig 4: Wasm-sandboxed image rendering in Firefox
// across three resolutions and three compression levels. The paper finds
// HFI 14%-37% faster than guard pages, with the largest wins on large,
// heavily compressed images.
func RunFig4() ([]Fig4Cell, *stats.Table, error) {
	tb := &stats.Table{
		Title:   "Fig 4: Firefox image rendering, normalized runtime (guard pages = 100%)",
		Columns: []string{"quality", "resolution", "bounds checks", "guard pages", "HFI"},
	}
	var cells []Fig4Cell
	for _, q := range Fig4Quality {
		for _, res := range Fig4Resolutions() {
			g, err := decodeImage(sfi.GuardPages, res, q.Work)
			if err != nil {
				return nil, nil, err
			}
			b, err := decodeImage(sfi.BoundsCheck, res, q.Work)
			if err != nil {
				return nil, nil, err
			}
			h, err := decodeImage(sfi.HFI, res, q.Work)
			if err != nil {
				return nil, nil, err
			}
			c := Fig4Cell{Quality: q.Name, Resolution: res.Name, Bounds: b / g, HFI: h / g}
			cells = append(cells, c)
			tb.AddRow(q.Name, res.Name,
				fmt.Sprintf("%.1f%%", c.Bounds*100),
				"100.0%",
				fmt.Sprintf("%.1f%%", c.HFI*100))
		}
	}
	tb.AddNote("paper: HFI 14%%-37%% faster than guard pages; larger and more compressed images benefit most")
	return cells, tb, nil
}

// RunFont reproduces the §6.2 font-rendering numbers: ten reflows of
// sandboxed libgraphite at multiple font sizes. Paper: guard pages
// 1823 ms, bounds checks 2022 ms, HFI 1677 ms (HFI 8.7% faster than
// guard).
func RunFont() (*stats.Table, error) {
	reflow := func(scheme sfi.Scheme) (float64, error) {
		rt := sandbox.NewRuntime()
		rt.Serialized = true
		inst, err := rt.Instantiate(workloads.FontShaper(), scheme, wasm.Options{})
		if err != nil {
			return 0, err
		}
		eng := cpu.NewInterp(rt.M)
		clock := rt.M.Kern.Clock
		t0 := clock.Now()
		for pass := 0; pass < 10; pass++ { // re-flow the page ten times
			for size := uint64(8); size < 18; size++ { // multiple font sizes
				r, _ := inst.Invoke(eng, 0, 4096, size)
				if r.Reason != cpu.StopHalt {
					return 0, fmt.Errorf("reflow: stop %v", r.Reason)
				}
			}
		}
		return float64(clock.Now() - t0), nil
	}

	g, err := reflow(sfi.GuardPages)
	if err != nil {
		return nil, err
	}
	b, err := reflow(sfi.BoundsCheck)
	if err != nil {
		return nil, err
	}
	h, err := reflow(sfi.HFI)
	if err != nil {
		return nil, err
	}
	tb := &stats.Table{
		Title:   "§6.2 font rendering (libgraphite reflow x10)",
		Columns: []string{"scheme", "time", "vs guard pages"},
	}
	tb.AddRow("guard pages", stats.Ns(g), "100.0%")
	tb.AddRow("bounds checks", stats.Ns(b), fmt.Sprintf("%.1f%%", b/g*100))
	tb.AddRow("HFI", stats.Ns(h), fmt.Sprintf("%.1f%%", h/g*100))
	tb.AddNote("paper: guard 1823ms, bounds 2022ms (110.9%%), HFI 1677ms (92.0%%)")
	return tb, nil
}

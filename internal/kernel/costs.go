package kernel

// CostModel holds the simulated-time constants (nanoseconds) for kernel
// operations. The defaults are calibrated so the end-to-end experiments
// land near the constants the paper reports; what the benchmarks then
// measure is how different isolation designs change *how often and over
// what ranges* these operations run. Each constant cites its anchor.
type CostModel struct {
	// SyscallBase is the user->kernel->user round trip for a trivial
	// syscall (mode switch, entry/exit path). ~80ns on Skylake-era
	// hardware with mitigations.
	SyscallBase uint64

	// MmapReserve is the cost of reserving address space with
	// PROT_NONE: a VMA insertion, independent of size.
	MmapReserve uint64

	// MprotectBase and MprotectPerPage model protection changes.
	// Anchored to §6.1: growing a Wasm heap to 4 GiB in 64 KiB steps
	// (65536 mprotect calls of 16 pages each) took 10.92 s in Wasmtime,
	// i.e. ~166 us per call. Most of that is VMA manipulation and
	// locking in a large address space; we charge it as a base plus a
	// small per-page term.
	MprotectBase    uint64
	MprotectPerPage uint64

	// MunmapBase/PerPage: unmapping tears down VMAs and page tables and
	// triggers a TLB shootdown (§2: "unmapping memory incurs a TLB
	// shootdown").
	MunmapBase    uint64
	MunmapPerPage uint64

	// MadviseBase, MadvisePerResidentPage, MadvisePerRangePage model
	// madvise(MADV_DONTNEED): a fixed entry cost, a per-resident-page
	// discard cost, and a small per-page range-walk cost that makes
	// discarding huge unmapped guard regions non-free (the §6.3.1
	// "non-HFI batched" case at 31.1 us vs 23.1 us with guard pages
	// elided).
	MadviseBase            uint64
	MadvisePerResidentPage uint64
	MadvisePerRangePage    uint64

	// TLBShootdown is the IPI cost added to munmap/madvise/mprotect in
	// concurrent environments.
	TLBShootdown uint64

	// SignalDeliver is the kernel cost of delivering a signal to a
	// registered handler (HFI faults arrive this way, §3.3.2).
	SignalDeliver uint64

	// ContextSwitch is the process context-switch cost, including the
	// xsave/xrstor of extended state (§2: "orders of magnitude" more
	// than a function call; ~1-2 us on Linux).
	ContextSwitch uint64

	// FileOp is the per-call body cost of the trivial virtual
	// file-system operations (open/read/close) beyond SyscallBase.
	FileOp uint64

	// HostcallBase is the host-side cost of one hostcall dispatch beyond
	// the core's transition cost: argument decode, table lookup, and the
	// trusted function prologue. An in-process transition, so well under
	// SyscallBase — no mode switch, no kernel entry path.
	HostcallBase uint64

	// HostcallCopyPerKiB is the marshalling cost per KiB copied between
	// guest linear memory and host buffers, charged on every hostcall
	// byte in either direction so boundary-crossing data volume shows up
	// on the simulated timeline.
	HostcallCopyPerKiB uint64

	// AuditHashPerPage is the cost of hashing one 64 KiB heap page during
	// a substrate spot check (the sampled end-of-request verified-reset
	// audit). ~64 KiB at a memory-bandwidth-bound ~13 GB/s scrub rate, so
	// sampling rate — not hash speed — is the knob that keeps detection
	// affordable.
	AuditHashPerPage uint64
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		SyscallBase:            80,
		MmapReserve:            600,
		MprotectBase:           160_000, // §6.1 heap-growth anchor
		MprotectPerPage:        400,
		MunmapBase:             1_200,
		MunmapPerPage:          120,
		MadviseBase:            1_000,
		MadvisePerResidentPage: 80,
		MadvisePerRangePage:    0, // see GuardWalk note below
		TLBShootdown:           1_500,
		SignalDeliver:          2_500,
		ContextSwitch:          1_500,
		FileOp:                 250,
		HostcallBase:           25,
		HostcallCopyPerKiB:     40,
		AuditHashPerPage:       4_800,
	}
}

// GuardWalkPerGiB is the extra madvise cost per GiB of PROT_NONE guard
// region included in a discarded range: the kernel still walks and splits
// the VMAs covering the reservation. Calibrated from §6.3.1: batching
// without eliding guard pages cost 31.1 us/sandbox vs 23.1 us with guards
// elided — i.e. ~8 us for the 8 GiB of guard+heap reservation per sandbox.
const GuardWalkPerGiB = 1_000

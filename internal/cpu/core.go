package cpu

import (
	"hfi/internal/hfi"
	"hfi/internal/isa"
	"hfi/internal/kernel"
)

// Core is the cycle-level out-of-order timing engine — the reproduction's
// analogue of the paper's gem5 model (§5.2, Table 2). It models:
//
//   - wide fetch along the predicted path (PHT/BTB/RSB), a reorder buffer,
//     Tomasulo-style operand capture, out-of-order issue, and in-order
//     commit with precise faults;
//   - speculative execution: wrong-path instructions issue and perform
//     real cache accesses before the mispredicted branch resolves — the
//     property the Spectre experiments (§5.3, Fig 7) depend on;
//   - HFI checks in parallel with translation: region checks gate a
//     load's cache access (a speculatively faulting access never touches
//     the cache hierarchy, §4.1), and code-region checks gate decode
//     (out-of-bounds fetches become faulting NOPs);
//   - HFI state updates as speculative register writes with snapshot
//     recovery, so an hfi_exit executed on the wrong path is undone by the
//     squash — and, if unserialized, opens exactly the speculation window
//     §3.4 describes.
type Core struct {
	M    *Machine
	Pred *predictor

	// Geometry, after the paper's Table 2.
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	IQSize      int    // scheduling-window size: waiting entries considered per cycle
	LoadPorts   int    // loads issued per cycle (Skylake: 2 AGU load ports)
	StorePorts  int    // stores issued per cycle
	FrontDepth  uint64 // fetch-to-issue pipeline depth in cycles

	cycle    uint64
	seq      uint64
	rob      []*robEntry
	regOwner [isa.NumRegs]*robEntry // latest in-flight writer, nil = none

	// ring backs ROB entries without per-dispatch allocation. Capacity
	// 2*ROBSize guarantees a slot is never reused while any in-flight
	// consumer can still hold a pointer to it: a producer referenced by
	// an operand is at most 2*ROBSize-1 sequence numbers older than the
	// newest dispatch (both producer and consumer were in the ROB
	// together, and the consumer is still in it).
	ring []robEntry

	fetchPC         uint64
	fetchReady      uint64 // no fetch before this cycle
	fetchStall      bool   // stop fetching until a serializer/fault resolves
	lastFetchedLine uint64

	stopped    bool
	stopResult RunResult

	// Stats.
	Fetched   uint64
	Squashed  uint64
	SpecLoads uint64 // loads issued that were later squashed
}

type operand struct {
	val uint64
	src *robEntry // in-flight producer; nil when val is ready at capture
}

type entryState uint8

const (
	esWaiting entryState = iota
	esDone
)

type faultClass uint8

const (
	fcNone faultClass = iota
	fcHFIData
	fcHFICode
	fcHFIExplicit
	fcMMU
	fcDivZero
	fcPriv
)

type robEntry struct {
	in       *isa.Instr
	pc       uint64
	seq      uint64
	predNext uint64

	ops  [3]operand // Rs1, Rs2, Rs3 captures
	dest isa.Reg

	state    entryState
	execDone uint64
	val      uint64

	// Memory state.
	ea      uint64
	eaValid bool
	isStore bool
	stVal   uint64
	stSize  uint8

	// Control state.
	isBranch   bool
	actualNext uint64

	// Fault state (raised at commit).
	fault     faultClass
	faultAddr uint64
	exWrite   bool

	// HFI snapshot for squash recovery of speculative HFI mutations.
	snap    *hfi.State
	hasSnap bool

	// serializer entries issue only at ROB head with fetch stalled.
	serializer bool
	squashed   bool // marks wrong-path issued loads for stats
}

// NewCore returns a timing core over m with Table 2 geometry.
func NewCore(m *Machine) *Core {
	const robSize = 224
	return &Core{
		ring:        make([]robEntry, 2*robSize),
		M:           m,
		Pred:        newPredictor(),
		FetchWidth:  4,
		IssueWidth:  8,
		CommitWidth: 8,
		ROBSize:     robSize,
		IQSize:      97,
		LoadPorts:   2,
		StorePorts:  1,
		FrontDepth:  5,
	}
}

// allocEntry hands out the ring slot for a new sequence number, reset.
func (c *Core) allocEntry() *robEntry {
	e := &c.ring[c.seq%uint64(len(c.ring))]
	*e = robEntry{seq: c.seq, dest: isa.RegNone}
	c.seq++
	return e
}

// Cycles returns the cycles consumed by this core since construction.
func (c *Core) Cycles() uint64 { return c.cycle }

// Run executes from the machine's PC until a stop condition or cycle
// budget (0 = unlimited).
func (c *Core) Run(maxCycles uint64) RunResult {
	c.fetchPC = c.M.PC
	c.fetchReady = c.cycle
	c.fetchStall = false
	c.stopped = false
	c.rob = c.rob[:0]
	c.regOwner = [isa.NumRegs]*robEntry{}
	c.lastFetchedLine = ^uint64(0)
	start := c.cycle

	for {
		if maxCycles != 0 && c.cycle-start >= maxCycles {
			c.syncClock()
			return RunResult{Reason: StopLimit}
		}
		c.commit()
		if c.stopped {
			c.syncClock()
			return c.stopResult
		}
		c.issue()
		c.fetch()
		if len(c.rob) == 0 && (c.fetchPC == HostReturn || c.M.Kern.Exited) {
			c.M.PC = c.fetchPC
			c.syncClock()
			if c.M.Kern.Exited {
				return RunResult{Reason: StopExit}
			}
			return RunResult{Reason: StopHostReturn}
		}
		c.cycle++
	}
}

func (c *Core) syncClock() {
	c.M.Kern.Clock.AdvanceCycles(c.cycle-c.M.Cycles, kernel.CoreGHz)
	c.M.Cycles = c.cycle
}

// ---- Fetch ----

func (c *Core) fetch() {
	if c.fetchStall || c.cycle < c.fetchReady || c.fetchPC == HostReturn {
		return
	}
	for n := 0; n < c.FetchWidth; n++ {
		if len(c.rob) >= c.ROBSize {
			return
		}
		if c.fetchPC == HostReturn {
			return
		}
		// Instruction cache: charge a fetch bubble on line misses.
		line := c.fetchPC >> 6
		if line != c.lastFetchedLine {
			c.lastFetchedLine = line
			lat := c.M.Hier.FetchLatency(c.fetchPC)
			if lat > c.M.Hier.Lat.L1 {
				c.fetchReady = c.cycle + uint64(lat)
				return
			}
		}
		// HFI code-region check in parallel with decode (§4.1): a failing
		// fetch is converted to a faulting NOP and fetch stops.
		if !c.M.HFI.PeekExec(c.fetchPC) {
			c.dispatchFault(fcHFICode, c.fetchPC)
			return
		}
		in := c.M.FetchInstr(c.fetchPC)
		if in == nil {
			c.dispatchFault(fcMMU, c.fetchPC)
			return
		}
		c.dispatch(in)
		if c.fetchStall {
			return
		}
	}
}

func (c *Core) dispatchFault(class faultClass, addr uint64) {
	e := c.allocEntry()
	e.pc = c.fetchPC
	e.state = esDone
	e.execDone = c.cycle + c.FrontDepth
	e.fault = class
	e.faultAddr = addr
	c.rob = append(c.rob, e)
	c.fetchStall = true
	c.Fetched++
}

func (c *Core) capture(r isa.Reg) operand {
	if r == isa.RegNone {
		return operand{}
	}
	if p := c.regOwner[r]; p != nil {
		return operand{src: p}
	}
	return operand{val: c.M.Regs[r]}
}

func (c *Core) dispatch(in *isa.Instr) {
	e := c.allocEntry()
	e.in = in
	e.pc = c.fetchPC
	e.execDone = c.cycle + c.FrontDepth
	c.Fetched++

	e.ops[0] = c.capture(in.Rs1)
	e.ops[1] = c.capture(in.Rs2)
	e.ops[2] = c.capture(in.Rs3)

	next := c.fetchPC + isa.InstrBytes
	switch in.Op {
	case isa.OpBr, isa.OpJmp, isa.OpJmpInd, isa.OpCall, isa.OpCallInd, isa.OpRet:
		e.isBranch = true
		next, _ = c.Pred.predict(c.fetchPC, in)
		// CALL and RET also read/write SP and memory.
		if in.Op == isa.OpCall || in.Op == isa.OpCallInd {
			e.ops[2] = c.capture(isa.SP)
			e.dest = isa.SP
			e.isStore = true
			e.stSize = 8
		}
		if in.Op == isa.OpRet {
			e.ops[0] = c.capture(isa.SP)
			e.dest = isa.SP
		}
	case isa.OpSyscall, isa.OpHostcall, isa.OpFence, isa.OpHalt, isa.OpXsave, isa.OpXrstor,
		isa.OpHfiSetRegion, isa.OpHfiGetRegion, isa.OpHfiClearRegion, isa.OpHfiClearAll:
		// Statically serializing (region updates serialize conservatively
		// in the core; §4.3 notes renaming could relax this).
		e.serializer = true
		c.fetchStall = true
	case isa.OpHfiEnter, isa.OpHfiExit, isa.OpHfiReenter:
		// Whether the transition serializes is only known at execute
		// (the flag lives in the sandbox_t / current config), so fetch
		// stalls at dispatch either way. The difference the is-serialized
		// flag makes is WHEN the transition may execute: unserialized
		// transitions issue out of order — speculatively, possibly on a
		// wrong path, which is exactly the §3.4 window — while
		// serialized ones wait for the ROB head (a full drain).
		c.fetchStall = true
	case isa.OpLoad, isa.OpHLoad:
		e.dest = in.Rd
	case isa.OpStore, isa.OpHStore:
		e.isStore = true
		e.stSize = in.Size
	default:
		if in.Rd != isa.RegNone {
			e.dest = in.Rd
		}
	}
	e.predNext = next

	c.rob = append(c.rob, e)
	// Record ownership after capturing sources (handles rd == rs cases).
	if e.dest != isa.RegNone {
		c.regOwner[e.dest] = e
	}
	c.fetchPC = next
}

// ---- Issue / execute ----

// opReady resolves an operand; ready is false while its producer is
// still executing. Committed producers keep their ROB record alive via the
// operand pointer, so no commit-time broadcast is needed.
func (c *Core) opReady(o *operand) (val uint64, ready bool) {
	p := o.src
	if p == nil {
		return o.val, true
	}
	if p.state == esDone && p.execDone <= c.cycle {
		if p.fault != fcNone {
			// Faulting producers never deliver a value; hardware returns
			// zero to dependents (they will be squashed at commit anyway).
			return 0, true
		}
		return p.val, true
	}
	return 0, false
}

func (c *Core) issue() {
	issued := 0
	considered := 0
	loads, stores := 0, 0
	for i := 0; i < len(c.rob) && issued < c.IssueWidth; i++ {
		e := c.rob[i]
		if e.state != esWaiting {
			continue
		}
		// The issue queue holds a bounded window of waiting micro-ops
		// (Table 2: 97 entries); younger instructions wait outside it.
		considered++
		if considered > c.IQSize {
			return
		}
		if c.cycle < e.execDone {
			continue
		}
		// Memory-port limits: two load issues and one store issue per
		// cycle, like the baseline core's AGU ports.
		if e.in.IsLoad() || e.in.Op == isa.OpRet {
			if loads >= c.LoadPorts {
				continue
			}
		}
		if e.in.IsStore() || e.in.Op == isa.OpCall || e.in.Op == isa.OpCallInd {
			if stores >= c.StorePorts {
				continue
			}
		}
		if e.serializer || e.in.Op == isa.OpHalt {
			if i != 0 {
				continue // serializers execute only at ROB head
			}
		}
		v0, r0 := c.opReady(&e.ops[0])
		v1, r1 := c.opReady(&e.ops[1])
		v2, r2 := c.opReady(&e.ops[2])
		if !r0 || !r1 || !r2 {
			continue
		}
		if e.in.IsMem() || e.in.Op == isa.OpCall || e.in.Op == isa.OpCallInd || e.in.Op == isa.OpRet {
			if !c.memReady(i, e, v0, v1, v2) {
				continue
			}
		}
		// HFI-mutating instructions execute in program order relative to
		// each other, so speculative snapshots nest correctly and squash
		// recovery restores the right pre-state.
		if isHFIMutator(e.in.Op) && c.olderHFIMutatorPending(i) {
			continue
		}
		if e.in.IsLoad() || e.in.Op == isa.OpRet {
			loads++
		}
		if e.in.IsStore() || e.in.Op == isa.OpCall || e.in.Op == isa.OpCallInd {
			stores++
		}
		before := len(c.rob)
		c.execute(i, e, v0, v1, v2)
		issued++
		if c.stopped || len(c.rob) != before {
			// A squash or flush invalidated the iteration state.
			return
		}
	}
}

func isHFIMutator(op isa.Op) bool {
	switch op {
	case isa.OpHfiEnter, isa.OpHfiExit, isa.OpHfiReenter,
		isa.OpHfiSetRegion, isa.OpHfiClearRegion, isa.OpHfiClearAll,
		isa.OpXrstor:
		return true
	}
	return false
}

func (c *Core) olderHFIMutatorPending(idx int) bool {
	for j := 0; j < idx; j++ {
		if c.rob[j].in != nil && isHFIMutator(c.rob[j].in.Op) && c.rob[j].state != esDone {
			return true
		}
	}
	return false
}

// memReady applies memory-ordering rules: a load may issue only when every
// older store has resolved its address and none overlaps (or an exact
// match can forward).
func (c *Core) memReady(idx int, e *robEntry, v0, v1, v2 uint64) bool {
	if e.isStore {
		return true // stores execute (resolve address) eagerly, write at commit
	}
	var ea uint64
	switch e.in.Op {
	case isa.OpRet:
		ea = v0
	case isa.OpHLoad:
		var ok bool
		ea, ok = c.M.HFI.PeekExplicitEA(int(e.in.HReg), v1, e.in.Scale, e.in.Disp, e.in.Size, false)
		if !ok {
			return true // will fault at execute; no ordering needed
		}
	default:
		ea = isa.PlainEA(v0, v1, e.in.Scale, e.in.Disp)
	}
	for j := 0; j < idx; j++ {
		st := c.rob[j]
		if !st.isStore {
			continue
		}
		if st.state != esDone {
			return false // older store address unknown
		}
		if st.fault != fcNone {
			continue
		}
		lo, hi := st.ea, st.ea+uint64(st.stSize)
		llo, lhi := ea, ea+uint64(loadSize(e.in))
		if lo < lhi && llo < hi {
			if lo == llo && st.stSize == loadSize(e.in) {
				continue // exact match: forwarded in execute()
			}
			return false // partial overlap: wait for the store to commit
		}
	}
	return true
}

func loadSize(in *isa.Instr) uint8 {
	if in.Op == isa.OpRet {
		return 8
	}
	return in.Size
}

// forwardLoad returns a forwarded value from the youngest older exact-match
// store, if any, truncated to the access size as the memory write would be.
func (c *Core) forwardLoad(idx int, ea uint64, size uint8) (uint64, bool) {
	for j := idx - 1; j >= 0; j-- {
		st := c.rob[j]
		if st.isStore && st.state == esDone && st.fault == fcNone && st.ea == ea && st.stSize == size {
			v := st.stVal
			if size < 8 {
				v &= 1<<(8*uint(size)) - 1
			}
			return v, true
		}
	}
	return 0, false
}

func (c *Core) snapshotHFI(e *robEntry) {
	snap := *c.M.HFI
	e.snap = &snap
	e.hasSnap = true
}

func (c *Core) finish(e *robEntry, lat uint64, val uint64) {
	e.state = esDone
	e.execDone = c.cycle + lat
	e.val = val
}

func (c *Core) specFault(e *robEntry, class faultClass, addr uint64, write bool) {
	e.state = esDone
	e.execDone = c.cycle + 1
	e.fault = class
	e.faultAddr = addr
	e.exWrite = write
}

// execute performs entry e's operation at the current cycle. Results are
// speculative: registers are visible to dependents through the ROB, memory
// writes wait for commit, HFI mutations are snapshotted.
func (c *Core) execute(idx int, e *robEntry, v0, v1, v2 uint64) {
	in := e.in
	m := c.M
	switch in.Op {
	case isa.OpNop:
		c.finish(e, 1, 0)
	case isa.OpHalt:
		c.stopped = true
		c.stopResult = RunResult{Reason: StopHalt}
		m.PC = e.pc
		c.finish(e, 1, 0)

	case isa.OpMovImm:
		c.finish(e, 1, uint64(in.Imm))
	case isa.OpMov:
		c.finish(e, 1, v0)

	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv,
		isa.OpRem, isa.OpNot, isa.OpNeg:
		b := v1
		if in.UseImm {
			b = uint64(in.Imm)
		}
		v, ok := aluOp(in.Op, v0, b)
		if in.W32 {
			v = uint64(uint32(v))
		}
		if !ok {
			c.specFault(e, fcDivZero, e.pc, false)
			return
		}
		lat := uint64(1)
		switch in.Op {
		case isa.OpMul:
			lat = 3
		case isa.OpDiv, isa.OpRem:
			lat = 20
		}
		c.finish(e, lat, v)

	case isa.OpLoad:
		ea := isa.PlainEA(v0, v1, in.Scale, in.Disp)
		e.ea, e.eaValid = ea, true
		// HFI check in parallel with the dtb lookup: a failing check
		// blocks the cache access entirely (§4.1).
		if !m.HFI.PeekData(ea, in.Size, false) {
			c.specFault(e, fcHFIData, ea, false)
			return
		}
		if !m.checkMMU(ea, in.Size, false) {
			c.specFault(e, fcMMU, ea, false)
			return
		}
		if fwd, ok := c.forwardLoad(idx, ea, in.Size); ok {
			v := fwd
			if in.SignExt {
				v = signExtend(v, in.Size)
			}
			c.finish(e, 1, v)
			return
		}
		lat := uint64(m.Hier.LoadLatency(ea)) // speculative cache update
		c.finish(e, lat, m.loadValue(ea, in))

	case isa.OpHLoad:
		ea, ok := m.HFI.PeekExplicitEA(int(in.HReg), v1, in.Scale, in.Disp, in.Size, false)
		if !ok {
			c.specFault(e, fcHFIExplicit, ea, false)
			return
		}
		e.ea, e.eaValid = ea, true
		if !m.checkMMU(ea, in.Size, false) {
			c.specFault(e, fcMMU, ea, false)
			return
		}
		if fwd, fok := c.forwardLoad(idx, ea, in.Size); fok {
			v := fwd
			if in.SignExt {
				v = signExtend(v, in.Size)
			}
			c.finish(e, 1, v)
			return
		}
		lat := uint64(m.Hier.LoadLatency(ea))
		c.finish(e, lat, m.loadValue(ea, in))

	case isa.OpStore:
		ea := isa.PlainEA(v0, v1, in.Scale, in.Disp)
		e.ea, e.eaValid = ea, true
		if !m.HFI.PeekData(ea, in.Size, true) {
			c.specFault(e, fcHFIData, ea, true)
			return
		}
		if !m.checkMMU(ea, in.Size, true) {
			c.specFault(e, fcMMU, ea, true)
			return
		}
		e.stVal = v2
		c.finish(e, uint64(m.Hier.StoreLatency(ea)), 0)

	case isa.OpHStore:
		ea, ok := m.HFI.PeekExplicitEA(int(in.HReg), v1, in.Scale, in.Disp, in.Size, true)
		if !ok {
			c.specFault(e, fcHFIExplicit, ea, true)
			return
		}
		e.ea, e.eaValid = ea, true
		if !m.checkMMU(ea, in.Size, true) {
			c.specFault(e, fcMMU, ea, true)
			return
		}
		e.stVal = v2
		c.finish(e, uint64(m.Hier.StoreLatency(ea)), 0)

	case isa.OpBr:
		b := v1
		if in.UseImm {
			b = uint64(in.Imm)
		}
		taken := in.Cond.Eval(v0, b)
		next := e.pc + isa.InstrBytes
		if taken {
			next = in.Target
		}
		c.resolveBranch(idx, e, next, taken)
	case isa.OpJmp:
		c.resolveBranch(idx, e, in.Target, true)
	case isa.OpJmpInd:
		c.resolveBranch(idx, e, v0, true)
	case isa.OpCall, isa.OpCallInd:
		sp := v2 - 8
		if !m.checkMMU(sp, 8, true) {
			c.specFault(e, fcMMU, sp, false)
			return
		}
		e.ea, e.eaValid = sp, true
		e.stVal = e.pc + isa.InstrBytes
		e.val = sp // new SP
		target := in.Target
		if in.Op == isa.OpCallInd {
			target = v0
		}
		c.resolveBranch(idx, e, target, true)
	case isa.OpRet:
		sp := v0
		if !m.checkMMU(sp, 8, false) {
			c.specFault(e, fcMMU, sp, false)
			return
		}
		var ra uint64
		if fwd, ok := c.forwardLoad(idx, sp, 8); ok {
			ra = fwd
		} else {
			m.Hier.LoadLatency(sp)
			ra = m.Mem().Read(sp, 8)
		}
		e.val = sp + 8 // new SP
		c.resolveBranch(idx, e, ra, true)

	case isa.OpSyscall:
		// Serializer: executing at ROB head with fetch stalled, so this
		// is architecturally equivalent to commit time.
		c.syncClock()
		serialized := m.HFI.Enabled && m.HFI.Bank.Cfg.Serialized && !m.HFI.SyscallAllowed()
		next, redirected, f := m.doSyscall(e.pc)
		if f != nil {
			c.specFault(e, fcPriv, e.pc, false)
			return
		}
		lat := uint64(2)
		if redirected {
			lat++ // the one-cycle microcode penalty of §4.4
			if serialized {
				lat += hfi.SerializeCycles
			}
		}
		e.isBranch = true
		e.actualNext = next
		c.finish(e, lat, 0)
		c.redirectFetch(next, c.cycle+lat)
	case isa.OpHostcall:
		// Serializer like syscall: executes at ROB head with fetch
		// stalled, so mutating the architectural register file directly
		// is commit-equivalent. No redirect path — the gate is the exit.
		c.syncClock()
		next, f := m.doHostcall(e.pc)
		if f != nil {
			c.specFault(e, fcPriv, e.pc, false)
			return
		}
		lat := uint64(2)
		e.isBranch = true
		e.actualNext = next
		c.finish(e, lat, 0)
		c.redirectFetch(next, c.cycle+lat)
	case isa.OpFence:
		c.finish(e, hfi.SerializeCycles, 0)
		c.redirectFetch(e.pc+isa.InstrBytes, c.cycle+hfi.SerializeCycles)
	case isa.OpClflush:
		m.Hier.Flush(v0 + uint64(in.Disp))
		c.finish(e, 2, 0)
	case isa.OpRdtsc:
		c.finish(e, 1, c.cycle)

	case isa.OpHfiEnter:
		c.executeEnter(idx, e, v0)
	case isa.OpHfiExit:
		c.executeExit(idx, e)
	case isa.OpHfiReenter:
		c.snapshotHFI(e)
		res, f := m.HFI.Reenter()
		if f != nil {
			c.specFault(e, fcPriv, e.pc, false)
			c.redirectFetch(e.pc+isa.InstrBytes, c.cycle+1)
			return
		}
		lat := uint64(2)
		if res.Serialize {
			lat += hfi.SerializeCycles
			c.squashAfter(idx)
		}
		c.finish(e, lat, 0)
		c.redirectFetch(e.pc+isa.InstrBytes, c.cycle+lat)

	case isa.OpHfiSetRegion, isa.OpHfiGetRegion, isa.OpHfiClearRegion, isa.OpHfiClearAll:
		// Serializer path: at ROB head, fetch stalled.
		c.snapshotHFI(e)
		moves, f := m.hfiMicro(in)
		if f != nil {
			c.specFault(e, fcPriv, e.pc, false)
			return
		}
		lat := uint64(2 + moves)
		if m.HFI.RegionUpdateSerializes() {
			lat += hfi.SerializeCycles
		}
		c.finish(e, lat, 0)
		c.redirectFetch(e.pc+isa.InstrBytes, c.cycle+lat)

	case isa.OpXsave:
		if !m.HFI.PrivilegedAllowed() {
			c.specFault(e, fcPriv, e.pc, false)
			return
		}
		img := m.HFI.Xsave()
		m.Mem().WriteBytes(v0, img[:])
		c.finish(e, hfi.SerializeCycles, 0)
		c.redirectFetch(e.pc+isa.InstrBytes, c.cycle+hfi.SerializeCycles)
	case isa.OpXrstor:
		if !m.HFI.PrivilegedAllowed() {
			c.specFault(e, fcPriv, e.pc, false)
			return
		}
		c.snapshotHFI(e)
		buf := make([]byte, hfi.XsaveSize)
		m.Mem().ReadBytes(v0, buf)
		m.HFI.Xrstor(buf)
		c.finish(e, hfi.SerializeCycles, 0)
		c.redirectFetch(e.pc+isa.InstrBytes, c.cycle+hfi.SerializeCycles)

	default:
		c.specFault(e, fcPriv, e.pc, false)
	}
}

// executeEnter handles hfi_enter. The serialized flag lives in the
// sandbox_t in memory, so the decision to drain happens here: a serialized
// enter only executes at ROB head and refuses to let younger speculation
// survive. An unserialized enter mutates HFI state speculatively.
func (c *Core) executeEnter(idx int, e *robEntry, ptr uint64) {
	m := c.M
	var sb [hfi.SandboxTSize]byte
	m.Mem().ReadBytes(ptr, sb[:])
	cfg := hfi.DecodeSandboxT(sb[:])
	if cfg.Serialized && idx != 0 {
		// Wait until this is the oldest instruction (drain before).
		return
	}
	c.snapshotHFI(e)
	res, f := m.hfiEnter(ptr)
	if f != nil {
		c.specFault(e, fcPriv, ptr, false)
		c.redirectFetch(e.pc+isa.InstrBytes, c.cycle+1)
		return
	}
	lat := uint64(3 + res.RegionLoads*(hfi.RegionEntrySize/8))
	if res.Serialize {
		lat += hfi.SerializeCycles
		c.squashAfter(idx)
	}
	c.finish(e, lat, 0)
	// Fetch was stalled at dispatch; resume past the transition.
	c.redirectFetch(e.pc+isa.InstrBytes, c.cycle+lat)
}

// executeExit handles hfi_exit. A serialized exit drains; an unserialized
// exit is a pure speculative state update (plus a fetch redirect when an
// exit handler is installed) — leaving the §3.4 window open by design.
func (c *Core) executeExit(idx int, e *robEntry) {
	m := c.M
	serialized := m.HFI.Enabled && m.HFI.Bank.Cfg.Serialized
	if serialized && idx != 0 {
		return
	}
	c.snapshotHFI(e)
	res := m.HFI.Exit()
	lat := uint64(2)
	if res.Serialize {
		lat += hfi.SerializeCycles
	}
	next := e.pc + isa.InstrBytes
	if res.Handler != 0 {
		m.LastExitPC = e.pc + isa.InstrBytes
		next = res.Handler
	}
	e.isBranch = true
	e.actualNext = next
	if res.Serialize {
		c.squashAfter(idx)
	}
	c.finish(e, lat, 0)
	// Fetch was stalled at dispatch; resume at the handler (if any) or
	// the fall-through.
	c.redirectFetch(next, c.cycle+lat)
}

// resolveBranch finishes a branch, trains the predictor, and on a
// misprediction squashes the wrong path and redirects fetch.
func (c *Core) resolveBranch(idx int, e *robEntry, actual uint64, taken bool) {
	e.actualNext = actual
	mispredicted := actual != e.predNext
	c.Pred.update(e.pc, e.in, taken, actual, mispredicted)
	c.finish(e, 1, e.val)
	if mispredicted {
		c.squashAfter(idx)
		c.redirectFetch(actual, e.execDone+1)
	}
}

func (c *Core) redirectFetch(pc, readyCycle uint64) {
	c.fetchPC = pc
	c.fetchReady = readyCycle
	c.fetchStall = false
	c.lastFetchedLine = ^uint64(0)
}

// squashAfter removes every ROB entry younger than index idx, restoring
// speculative register ownership and any HFI state the squashed entries
// had mutated. Cache and predictor state are NOT rolled back — faithfully
// to hardware, and essential to the Spectre experiments.
func (c *Core) squashAfter(idx int) {
	if idx+1 >= len(c.rob) {
		return
	}
	// Restore the oldest squashed HFI snapshot: state before the first
	// squashed mutation.
	for j := idx + 1; j < len(c.rob); j++ {
		sq := c.rob[j]
		if sq.hasSnap {
			*c.M.HFI = *sq.snap
			break
		}
	}
	for j := idx + 1; j < len(c.rob); j++ {
		if c.rob[j].in != nil && c.rob[j].in.IsLoad() && c.rob[j].state == esDone {
			c.SpecLoads++
		}
	}
	c.Squashed += uint64(len(c.rob) - idx - 1)
	c.rob = c.rob[:idx+1]
	// Squashed sequence numbers are never referenced again; rolling seq
	// back keeps live entries dense in sequence space, which the ring
	// buffer's reuse-distance bound depends on.
	c.seq = c.rob[idx].seq + 1
	// Rebuild register ownership from the surviving entries.
	c.regOwner = [isa.NumRegs]*robEntry{}
	for j := range c.rob {
		if d := c.rob[j].dest; d != isa.RegNone {
			c.regOwner[d] = c.rob[j]
		}
	}
	c.fetchStall = false
}

// ---- Commit ----

func (c *Core) commit() {
	for n := 0; n < c.CommitWidth && len(c.rob) > 0; n++ {
		e := c.rob[0]
		if e.state != esDone || c.cycle < e.execDone {
			return
		}
		if e.fault != fcNone {
			c.commitFault(e)
			return
		}
		// Architectural effects.
		if e.isStore && e.eaValid {
			c.M.Mem().Write(e.ea, e.stSize, e.stVal)
		}
		if e.dest != isa.RegNone {
			c.M.Regs[e.dest] = e.val
			if c.regOwner[e.dest] == e {
				c.regOwner[e.dest] = nil
			}
		}
		if e.in != nil {
			c.M.Instret++
			c.M.PC = e.pc + isa.InstrBytes
			if e.isBranch {
				c.M.PC = e.actualNext
			}
		}
		// Consumers holding a pointer to this entry keep reading its
		// value after commit; no broadcast is needed.
		c.rob = c.rob[1:]
		if c.stopped {
			return
		}
	}
}

// commitFault raises a precise architectural fault: the HFI checks are
// re-run mutatingly (recording the MSR and disabling the sandbox), the
// kernel delivers the signal, and the pipeline is fully flushed.
func (c *Core) commitFault(e *robEntry) {
	m := c.M
	var hf *hfi.Fault
	switch e.fault {
	case fcHFIData:
		hf = m.HFI.CheckData(e.faultAddr, loadSizeOrOne(e), e.exWrite)
	case fcHFICode:
		hf = m.HFI.CheckExec(e.faultAddr)
	case fcHFIExplicit:
		_, hf = m.HFI.ExplicitEA(int(e.in.HReg), opVal(&e.ops[1]), e.in.Scale, e.in.Disp, e.in.Size, e.exWrite)
	case fcPriv:
		hf = m.HFI.PrivFault(e.faultAddr)
	}
	pageFault := e.fault == fcMMU
	c.syncClock()
	resume := m.raiseFault(e.pc, e.faultAddr, hf)
	// Full flush.
	c.rob = c.rob[:0]
	c.regOwner = [isa.NumRegs]*robEntry{}
	if resume == 0 {
		c.stopped = true
		c.stopResult = RunResult{Reason: StopFault, Fault: hf, PageFault: pageFault,
			FaultAddr: e.faultAddr, FaultPC: e.pc}
		return
	}
	m.PC = resume
	c.redirectFetch(resume, c.cycle+c.FrontDepth)
}

func loadSizeOrOne(e *robEntry) uint8 {
	if e.in != nil && e.in.Size != 0 {
		return e.in.Size
	}
	return 1
}

func opVal(o *operand) uint64 {
	if o.src == nil {
		return o.val
	}
	if o.src.state == esDone && o.src.fault == fcNone {
		return o.src.val
	}
	return 0
}

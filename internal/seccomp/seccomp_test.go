package seccomp

import "testing"

func TestAllowListSemantics(t *testing.T) {
	f := AllowList(3, 5)
	if ok, _ := f.Check(3, [5]uint64{}); !ok {
		t.Fatal("allowed syscall denied")
	}
	if ok, _ := f.Check(5, [5]uint64{}); !ok {
		t.Fatal("allowed syscall denied")
	}
	if ok, _ := f.Check(4, [5]uint64{}); ok {
		t.Fatal("unlisted syscall allowed")
	}
	if f.Denials != 1 || f.Evaluated != 3 {
		t.Fatalf("stats: denials=%d evaluated=%d", f.Denials, f.Evaluated)
	}
}

// TestCostScalesWithFilterLength: later allow-list entries cost more to
// reach — the behaviour that makes long real-world filters expensive.
func TestCostScalesWithFilterLength(t *testing.T) {
	f := AllowList(1, 2, 3, 4, 5)
	_, cFirst := f.Check(1, [5]uint64{})
	_, cLast := f.Check(5, [5]uint64{})
	if cLast <= cFirst {
		t.Fatalf("cost not ordered: first=%d last=%d", cFirst, cLast)
	}
	if cFirst < HookOverheadNs {
		t.Fatalf("missing hook overhead: %d", cFirst)
	}
}

func TestArgGatedRule(t *testing.T) {
	f := &Filter{Insns: []Insn{
		{Sysno: 7, ArgIdx: 0, ArgMax: 100, Verdict: ActionAllow},
		{Any: true, ArgIdx: -1, Verdict: ActionDeny},
	}}
	if ok, _ := f.Check(7, [5]uint64{50}); !ok {
		t.Fatal("in-range arg denied")
	}
	if ok, _ := f.Check(7, [5]uint64{200}); ok {
		t.Fatal("out-of-range arg allowed")
	}
}

func TestDefaultDeny(t *testing.T) {
	f := &Filter{} // empty program
	if ok, _ := f.Check(1, [5]uint64{}); ok {
		t.Fatal("empty filter allowed a syscall")
	}
}

package spectre

import "testing"

// TestPHTLeaksWithoutHFI is the core §5.3 positive result: without HFI the
// simulator is vulnerable to Spectre-PHT and the attack recovers the secret.
func TestPHTLeaksWithoutHFI(t *testing.T) {
	h, err := NewPHT(false)
	if err != nil {
		t.Fatal(err)
	}
	got, results := h.LeakString(len(Secret))
	if got != Secret {
		t.Fatalf("leaked %q, want %q (per-byte hits: %v)", got, Secret, hits(results))
	}
}

// TestPHTBlockedWithHFI is the §5.3 negative result: with the secret
// outside every HFI region, no probe line ever drops below the hit
// threshold for an untrained value (Fig 7's "no access latency below the
// measured threshold").
func TestPHTBlockedWithHFI(t *testing.T) {
	h, err := NewPHT(true)
	if err != nil {
		t.Fatal(err)
	}
	got, results := h.LeakString(len(Secret))
	for i, r := range results {
		if r.Hit {
			t.Errorf("byte %d: leak signal (latency %d for value %q) despite HFI", i, r.Latency[r.Leaked], r.Leaked)
		}
	}
	for _, c := range got {
		if c != '?' {
			t.Fatalf("recovered %q despite HFI", got)
		}
	}
}

func hits(results []Result) []bool {
	out := make([]bool, len(results))
	for i, r := range results {
		out[i] = r.Hit
	}
	return out
}

// TestBTBLeaksWithoutHFI: the BTB-trained indirect jump speculatively
// executes the leak gadget and recovers the secret when HFI is off.
func TestBTBLeaksWithoutHFI(t *testing.T) {
	h, err := NewBTB(false)
	if err != nil {
		t.Fatal(err)
	}
	got, results := h.LeakString(len(Secret))
	if got != Secret {
		t.Fatalf("leaked %q, want %q (per-byte hits: %v)", got, Secret, hits(results))
	}
}

// TestBTBBlockedWithHFI: with HFI regions excluding the secret, the
// speculatively executed gadget's load is blocked before the cache fill.
func TestBTBBlockedWithHFI(t *testing.T) {
	h, err := NewBTB(true)
	if err != nil {
		t.Fatal(err)
	}
	got, results := h.LeakString(len(Secret))
	for i, r := range results {
		if r.Hit {
			t.Errorf("byte %d: leak signal despite HFI", i)
		}
	}
	for _, c := range got {
		if c != '?' {
			t.Fatalf("recovered %q despite HFI", got)
		}
	}
}
